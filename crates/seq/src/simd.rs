//! SIMD fast paths for the hot per-block kernels.
//!
//! Block-delayed execution turns pipelines into straight-line sequential
//! loops over blocks — exactly the shape autovectorization wants. This
//! module supplies vector-width-dispatched kernels for the primitive
//! inner loops (`sum`/`min`/`max` over machine ints and floats, byte
//! scanning for the grep/wc workloads, and elementwise map/tabulate)
//! plus parallel drivers that run them block-parallel on the ambient
//! `bds-pool`.
//!
//! ## Dispatch ladder
//!
//! A process-wide [`SimdLevel`] is resolved once, in order of
//! precedence:
//!
//! 1. a programmatic [`force_level`] guard (tests and `bds-check`
//!    differential legs), capped at what the CPU supports;
//! 2. the `BDS_SIMD` environment variable — `off`/`scalar`, `avx2`,
//!    `avx512`, or `auto` — also capped at CPU support;
//! 3. runtime feature detection (`is_x86_feature_detected!`), yielding
//!    [`SimdLevel::Scalar`] on non-x86-64 targets.
//!
//! Kernels are *not* hand-written intrinsics: each is a plain Rust loop
//! compiled three times — once at the baseline target, once under
//! `#[target_feature(enable = "avx2")]`, once under the AVX-512
//! features — and LLVM autovectorizes the annotated copies. The match
//! on [`SimdLevel`] picks the copy whose features the CPU was verified
//! to have, which is the safety argument for every `unsafe` call in
//! this module.
//!
//! ## Semantics the fast paths must preserve
//!
//! * **Cancellation** — every driver walks its input in chunks of at
//!   most [`CHUNK`] (= [`bds_pool::PollTicker::INTERVAL`]) elements and
//!   calls [`bds_pool::PollTicker::tick_n`] between chunks, so the
//!   cooperative-cancellation latency bound (poll at least once per
//!   1024 elements) is identical to the scalar streams.
//! * **Fault injection** — the `try_` drivers poll
//!   [`crate::faults::poll`] once per chunk, *on the scalar and the
//!   SIMD path alike*: both legs of a differential check traverse the
//!   same chunk structure, so an injected fault lands at the same chunk
//!   ordinal regardless of level and the legs stay comparable
//!   bit-for-bit (ints) or ULP-for-ULP (floats).
//! * **Memory budgets** — every materializing driver allocates through
//!   the same `PartialVec` protocol (`crate::util`) as the eager
//!   consumers, so governed runs charge the budget identically.
//!
//! ## Determinism across levels
//!
//! Integer kernels use wrapping adds and min/max — fully associative
//! and commutative — so every level produces bit-identical results.
//! Float summation is reassociated (that is the entire speedup): the
//! vector tiers keep eight partial accumulators per chunk. Results are
//! deterministic *per level and geometry* but differ across levels by
//! accumulated rounding; differential checks bound the drift in ULPs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::util::{build_vec, BlockWriter};
use bds_pool::PollTicker;

/// Elements per poll chunk: the cancellation interval, so one `tick_n`
/// per chunk preserves the poll-latency bound exactly.
pub const CHUNK: usize = PollTicker::INTERVAL as usize;

/// How wide the dispatched kernels may go. Ordered: wider levels
/// compare greater, so capping a request at CPU support is `min`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Baseline codegen, no feature-gated copies. Float reductions at
    /// this level are plain left folds (chunk-at-a-time), making it the
    /// oracle leg for differential checks.
    Scalar,
    /// 256-bit integer and float vectors (`avx2`, implies `fma` is
    /// *not* assumed — we enable only what we check).
    Avx2,
    /// 512-bit vectors (`avx512f` + `avx512bw` + `avx512dq` +
    /// `avx512vl`).
    Avx512,
}

impl SimdLevel {
    /// Stable lowercase name, matching the `BDS_SIMD` spellings.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// Vector width in bytes this level dispatches (16 reported for
    /// scalar: baseline x86-64 codegen still has SSE2).
    pub fn vector_bytes(self) -> usize {
        match self {
            SimdLevel::Scalar => bds_cost::lanes::SSE2_VECTOR_BYTES,
            SimdLevel::Avx2 => bds_cost::lanes::AVX2_VECTOR_BYTES,
            SimdLevel::Avx512 => bds_cost::lanes::AVX512_VECTOR_BYTES,
        }
    }
}

fn encode(l: SimdLevel) -> usize {
    match l {
        SimdLevel::Scalar => 1,
        SimdLevel::Avx2 => 2,
        SimdLevel::Avx512 => 3,
    }
}

fn decode(v: usize) -> SimdLevel {
    match v {
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Avx2,
        3 => SimdLevel::Avx512,
        _ => unreachable!("corrupt SimdLevel encoding: {v}"),
    }
}

/// What the CPU actually supports, probed once per process.
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512bw")
                && is_x86_feature_detected!("avx512dq")
                && is_x86_feature_detected!("avx512vl")
            {
                return SimdLevel::Avx512;
            }
            if is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// The levels this CPU can run, narrowest first — what `bds-check`
/// iterates when forcing legs.
pub fn supported_levels() -> Vec<SimdLevel> {
    [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512]
        .into_iter()
        .filter(|&l| l <= detected_level())
        .collect()
}

/// Programmatic override; 0 = none. Takes precedence over `BDS_SIMD`.
static FORCE: AtomicUsize = AtomicUsize::new(0);
/// Resolved `BDS_SIMD`/detection default; 0 = not yet resolved.
static MODE: AtomicUsize = AtomicUsize::new(0);

fn resolved_default() -> SimdLevel {
    match MODE.load(Ordering::Relaxed) {
        0 => {
            let detected = detected_level();
            let level = match std::env::var("BDS_SIMD").ok().as_deref() {
                Some("off") | Some("scalar") => SimdLevel::Scalar,
                Some("avx2") => SimdLevel::Avx2.min(detected),
                Some("avx512") => SimdLevel::Avx512.min(detected),
                _ => detected,
            };
            // Benign race: everyone computes the same value from the
            // same env + CPU; first store wins, all agree.
            match MODE.compare_exchange(0, encode(level), Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => level,
                Err(v) => decode(v),
            }
        }
        v => decode(v),
    }
}

/// The level the kernels will dispatch *right now*: the active
/// [`force_level`] override if any, else the resolved `BDS_SIMD` /
/// detection default. Never exceeds [`detected_level`], which is the
/// soundness invariant every `unsafe` kernel call relies on.
pub fn active_level() -> SimdLevel {
    match FORCE.load(Ordering::Relaxed) {
        0 => resolved_default(),
        v => decode(v),
    }
}

/// RAII guard restoring the previous override on drop; see
/// [`force_level`].
pub struct SimdLevelGuard {
    previous: usize,
    applied: SimdLevel,
}

impl SimdLevelGuard {
    /// The level actually applied — `min(requested, detected)`.
    pub fn applied(&self) -> SimdLevel {
        self.applied
    }
}

impl Drop for SimdLevelGuard {
    fn drop(&mut self) {
        FORCE.store(self.previous, Ordering::Relaxed);
    }
}

/// Force a dispatch level process-wide until the guard drops, capped at
/// what the CPU supports (requesting AVX-512 on an AVX2 machine forces
/// AVX2 — read [`SimdLevelGuard::applied`] when exactness matters).
/// Like [`crate::policy::force_block_size`], concurrent guards with
/// different levels are a logic error (last writer wins); tests
/// serialize on a shared lock.
pub fn force_level(level: SimdLevel) -> SimdLevelGuard {
    let applied = level.min(detected_level());
    let previous = FORCE.swap(encode(applied), Ordering::Relaxed);
    SimdLevelGuard { previous, applied }
}

/// Error returned by `try_` drivers when the [`crate::faults`] injector
/// fires on one of their per-chunk polls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interrupted {
    /// Index of the first element of the chunk whose poll fired.
    pub at: usize,
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at chunk starting at element {}", self.at)
    }
}

impl std::error::Error for Interrupted {}

// ---------------------------------------------------------------------
// Element traits and per-type kernel instantiations
// ---------------------------------------------------------------------

mod sealed {
    pub trait Sealed {}
}

/// A primitive element the SIMD reduction kernels cover. Sealed: the
/// per-type kernels are compiled here, under this module's dispatch
/// invariant.
pub trait SimdElem: Copy + Send + Sync + PartialEq + std::fmt::Debug + sealed::Sealed + 'static {
    /// Additive identity of [`SimdElem::add`].
    const ZERO: Self;
    /// The combine the sum kernels implement: wrapping add for ints,
    /// IEEE `+` for floats.
    fn add(self, rhs: Self) -> Self;
    #[doc(hidden)]
    fn sum_chunk(level: SimdLevel, chunk: &[Self]) -> Self;
}

/// A [`SimdElem`] with a total order, enabling the min/max kernels
/// (integers only: float min/max NaN semantics are not worth the
/// differential-check ambiguity).
pub trait SimdOrd: SimdElem + Ord {
    #[doc(hidden)]
    fn min_chunk(level: SimdLevel, chunk: &[Self]) -> Self;
    #[doc(hidden)]
    fn max_chunk(level: SimdLevel, chunk: &[Self]) -> Self;
}

/// Dispatch a per-chunk kernel: `$body` is the inline-always baseline
/// copy, `$avx2`/`$avx512` its feature-gated clones.
///
/// SAFETY (of the generated `unsafe` calls): [`active_level`] and
/// [`force_level`] cap every level at [`detected_level`], so the AVX2
/// arm only runs after `is_x86_feature_detected!("avx2")` returned
/// true, and likewise for AVX-512.
macro_rules! dispatch {
    ($level:expr, $chunk:expr, $body:path, $avx2:path, $avx512:path) => {{
        #[cfg(target_arch = "x86_64")]
        match $level {
            SimdLevel::Scalar => $body($chunk),
            SimdLevel::Avx2 => unsafe { $avx2($chunk) },
            SimdLevel::Avx512 => unsafe { $avx512($chunk) },
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = $level;
            $body($chunk)
        }
    }};
}

macro_rules! feature_clones {
    ($t:ty, $body:path, $avx2:ident, $avx512:ident) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        pub unsafe fn $avx2(chunk: &[$t]) -> $t {
            $body(chunk)
        }
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
        pub unsafe fn $avx512(chunk: &[$t]) -> $t {
            $body(chunk)
        }
    };
}

macro_rules! int_simd {
    ($t:ty, $m:ident) => {
        mod $m {
            #[inline(always)]
            pub fn sum_body(chunk: &[$t]) -> $t {
                let mut acc: $t = 0;
                for &x in chunk {
                    acc = acc.wrapping_add(x);
                }
                acc
            }
            #[inline(always)]
            pub fn min_body(chunk: &[$t]) -> $t {
                let mut m = chunk[0];
                for &x in &chunk[1..] {
                    m = if x < m { x } else { m };
                }
                m
            }
            #[inline(always)]
            pub fn max_body(chunk: &[$t]) -> $t {
                let mut m = chunk[0];
                for &x in &chunk[1..] {
                    m = if x > m { x } else { m };
                }
                m
            }
            feature_clones!($t, sum_body, sum_avx2, sum_avx512);
            feature_clones!($t, min_body, min_avx2, min_avx512);
            feature_clones!($t, max_body, max_avx2, max_avx512);
        }

        impl sealed::Sealed for $t {}

        impl SimdElem for $t {
            const ZERO: Self = 0;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }
            #[inline]
            fn sum_chunk(level: SimdLevel, chunk: &[Self]) -> Self {
                dispatch!(level, chunk, $m::sum_body, $m::sum_avx2, $m::sum_avx512)
            }
        }

        impl SimdOrd for $t {
            #[inline]
            fn min_chunk(level: SimdLevel, chunk: &[Self]) -> Self {
                dispatch!(level, chunk, $m::min_body, $m::min_avx2, $m::min_avx512)
            }
            #[inline]
            fn max_chunk(level: SimdLevel, chunk: &[Self]) -> Self {
                dispatch!(level, chunk, $m::max_body, $m::max_avx2, $m::max_avx512)
            }
        }
    };
}

int_simd!(u8, u8_kernels);
int_simd!(u32, u32_kernels);
int_simd!(u64, u64_kernels);
int_simd!(i32, i32_kernels);
int_simd!(i64, i64_kernels);

macro_rules! float_simd {
    ($t:ty, $m:ident) => {
        mod $m {
            /// Plain left fold — the scalar/oracle semantics.
            #[inline(always)]
            pub fn sum_scalar(chunk: &[$t]) -> $t {
                let mut acc: $t = 0.0;
                for &x in chunk {
                    acc += x;
                }
                acc
            }
            /// Eight-way reassociated sum. LLVM will not reassociate
            /// IEEE adds on its own, so the parallel accumulators are
            /// spelled out; under AVX2/AVX-512 each becomes (part of) a
            /// vector register and the loop vectorizes.
            #[inline(always)]
            pub fn sum_wide(chunk: &[$t]) -> $t {
                const WAY: usize = 8;
                let mut acc = [0.0 as $t; WAY];
                let mut it = chunk.chunks_exact(WAY);
                for c in it.by_ref() {
                    for k in 0..WAY {
                        acc[k] += c[k];
                    }
                }
                let mut total: $t = 0.0;
                for k in 0..WAY {
                    total += acc[k];
                }
                for &x in it.remainder() {
                    total += x;
                }
                total
            }
            feature_clones!($t, sum_wide, sum_avx2, sum_avx512);
        }

        impl sealed::Sealed for $t {}

        impl SimdElem for $t {
            const ZERO: Self = 0.0;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self + rhs
            }
            #[inline]
            fn sum_chunk(level: SimdLevel, chunk: &[Self]) -> Self {
                dispatch!(level, chunk, $m::sum_scalar, $m::sum_avx2, $m::sum_avx512)
            }
        }
    };
}

float_simd!(f32, f32_kernels);
float_simd!(f64, f64_kernels);

// ---------------------------------------------------------------------
// Byte-scanning kernels (grep / wc)
// ---------------------------------------------------------------------

mod bytes {
    /// Matches-per-chunk count; compiles to `pcmpeqb`+`psadbw`-style
    /// code under the vector features.
    #[inline(always)]
    pub fn count_eq_body(chunk: &[u8], needle: u8) -> u64 {
        let mut n: u64 = 0;
        for &b in chunk {
            n += u64::from(b == needle);
        }
        n
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_eq_avx2(chunk: &[u8], needle: u8) -> u64 {
        count_eq_body(chunk, needle)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn count_eq_avx512(chunk: &[u8], needle: u8) -> u64 {
        count_eq_body(chunk, needle)
    }

    /// Word-count kernel for `wc`: counts word *starts* inside `chunk`
    /// given the byte immediately before it (`prev`, `None` at the
    /// start of input). A word start is a non-space whose predecessor
    /// is a space (or the input boundary).
    ///
    /// Written as an elementwise zip of `chunk` with its one-shifted
    /// self — a pure mask expression with no loop-carried dependency —
    /// plus a boundary term, so the loop vectorizes; the naive
    /// `prev_is_space` formulation is a serial chain.
    #[inline(always)]
    pub fn word_starts_body(chunk: &[u8], prev: Option<u8>) -> u64 {
        #[inline(always)]
        fn space(b: u8) -> bool {
            b == b' ' || b == b'\n' || b == b'\t'
        }
        if chunk.is_empty() {
            return 0;
        }
        let boundary = u64::from(!space(chunk[0]) && prev.is_none_or(space));
        let mut n: u64 = 0;
        let shifted = &chunk[..chunk.len() - 1];
        for (&cur, &prev) in chunk[1..].iter().zip(shifted) {
            n += u64::from(!space(cur) && space(prev));
        }
        boundary + n
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    pub unsafe fn word_starts_avx2(chunk: &[u8], prev: Option<u8>) -> u64 {
        word_starts_body(chunk, prev)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn word_starts_avx512(chunk: &[u8], prev: Option<u8>) -> u64 {
        word_starts_body(chunk, prev)
    }
}

#[inline]
fn count_eq_chunk(level: SimdLevel, chunk: &[u8], needle: u8) -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: the module dispatch invariant — `level` never exceeds
    // `detected_level()`.
    match level {
        SimdLevel::Scalar => bytes::count_eq_body(chunk, needle),
        SimdLevel::Avx2 => unsafe { bytes::count_eq_avx2(chunk, needle) },
        SimdLevel::Avx512 => unsafe { bytes::count_eq_avx512(chunk, needle) },
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = level;
        bytes::count_eq_body(chunk, needle)
    }
}

#[inline]
fn word_starts_chunk(level: SimdLevel, chunk: &[u8], prev: Option<u8>) -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: dispatch invariant, as above.
    match level {
        SimdLevel::Scalar => bytes::word_starts_body(chunk, prev),
        SimdLevel::Avx2 => unsafe { bytes::word_starts_avx2(chunk, prev) },
        SimdLevel::Avx512 => unsafe { bytes::word_starts_avx512(chunk, prev) },
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = level;
        bytes::word_starts_body(chunk, prev)
    }
}

// ---------------------------------------------------------------------
// Sequential drivers: chunked, cancellation-polled
// ---------------------------------------------------------------------

#[inline]
fn sum_with_level<T: SimdElem>(level: SimdLevel, xs: &[T]) -> T {
    let mut ticker = PollTicker::new();
    let mut acc = T::ZERO;
    for chunk in xs.chunks(CHUNK) {
        ticker.tick_n(chunk.len());
        acc = acc.add(T::sum_chunk(level, chunk));
    }
    acc
}

/// Sum `xs` at the active dispatch level, polling cancellation every
/// [`CHUNK`] elements. Integer sums wrap; float sums are reassociated
/// at the vector levels (see the module docs).
pub fn sum<T: SimdElem>(xs: &[T]) -> T {
    crate::counters::count_reads(xs.len());
    sum_with_level(active_level(), xs)
}

/// [`sum`] with a per-chunk fault-injection poll: both the scalar and
/// SIMD legs traverse identical chunk structure, so an armed
/// [`crate::faults`] countdown fires at the same chunk regardless of
/// level.
pub fn try_sum<T: SimdElem>(xs: &[T]) -> Result<T, Interrupted> {
    let level = active_level();
    crate::counters::count_reads(xs.len());
    let mut ticker = PollTicker::new();
    let mut acc = T::ZERO;
    let mut at = 0;
    for chunk in xs.chunks(CHUNK) {
        ticker.tick_n(chunk.len());
        if crate::faults::poll() {
            return Err(Interrupted { at });
        }
        acc = acc.add(T::sum_chunk(level, chunk));
        at += chunk.len();
    }
    Ok(acc)
}

macro_rules! minmax_driver {
    ($name:ident, $chunk_fn:ident, $fold:ident, $doc:literal) => {
        #[doc = $doc]
        pub fn $name<T: SimdOrd>(xs: &[T]) -> Option<T> {
            let level = active_level();
            crate::counters::count_reads(xs.len());
            let mut ticker = PollTicker::new();
            let mut best: Option<T> = None;
            for chunk in xs.chunks(CHUNK) {
                ticker.tick_n(chunk.len());
                let m = T::$chunk_fn(level, chunk);
                best = Some(match best {
                    None => m,
                    Some(b) => b.$fold(m),
                });
            }
            best
        }
    };
}

minmax_driver!(
    min,
    min_chunk,
    min,
    "Minimum of `xs` at the active dispatch level (`None` when empty), polling cancellation every [`CHUNK`] elements."
);
minmax_driver!(
    max,
    max_chunk,
    max,
    "Maximum of `xs` at the active dispatch level (`None` when empty), polling cancellation every [`CHUNK`] elements."
);

/// Count bytes equal to `needle` — the grep/wc newline counter.
pub fn count_eq(hay: &[u8], needle: u8) -> u64 {
    let level = active_level();
    crate::counters::count_reads(hay.len());
    let mut ticker = PollTicker::new();
    let mut n = 0;
    for chunk in hay.chunks(CHUNK) {
        ticker.tick_n(chunk.len());
        n += count_eq_chunk(level, chunk, needle);
    }
    n
}

/// [`count_eq`] with a per-chunk fault-injection poll.
pub fn try_count_eq(hay: &[u8], needle: u8) -> Result<u64, Interrupted> {
    let level = active_level();
    crate::counters::count_reads(hay.len());
    let mut ticker = PollTicker::new();
    let mut n = 0;
    let mut at = 0;
    for chunk in hay.chunks(CHUNK) {
        ticker.tick_n(chunk.len());
        if crate::faults::poll() {
            return Err(Interrupted { at });
        }
        n += count_eq_chunk(level, chunk, needle);
        at += chunk.len();
    }
    Ok(n)
}

/// Indices of every byte equal to `needle`, memchr-style: a vectorized
/// count pass sizes the exact allocation (charged against any ambient
/// memory budget), then only chunks known to contain matches are
/// re-walked scalar to extract positions.
pub fn positions_eq(hay: &[u8], needle: u8) -> Vec<usize> {
    let level = active_level();
    let total = count_eq(hay, needle) as usize;
    crate::util::charge_elems::<usize>(total);
    crate::counters::count_allocs(total);
    let mut out = Vec::with_capacity(total);
    let mut ticker = PollTicker::new();
    for (c, chunk) in hay.chunks(CHUNK).enumerate() {
        ticker.tick_n(chunk.len());
        if count_eq_chunk(level, chunk, needle) == 0 {
            continue;
        }
        let base = c * CHUNK;
        for (i, &b) in chunk.iter().enumerate() {
            if b == needle {
                out.push(base + i);
            }
        }
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// Line and word counts of `text` in one chunked pass — the `wc` hot
/// loop, vectorized. Returns `(lines, words)`; lines are `\n` counts,
/// a word is a maximal run of non-space bytes (space = ` `, `\n`,
/// `\t`), both exactly as `bds_workloads::wc` defines them.
pub fn wc_count(text: &[u8]) -> (u64, u64) {
    wc_count_with_prev(text, None)
}

/// [`wc_count`] of a text *slice*, given the byte immediately before it
/// (`None` at input start). This is the block kernel parallel callers
/// compose: a word spanning the seam between two blocks is counted by
/// whichever block contains its first byte.
pub fn wc_count_with_prev(text: &[u8], mut prev: Option<u8>) -> (u64, u64) {
    let level = active_level();
    crate::counters::count_reads(text.len());
    let mut ticker = PollTicker::new();
    let (mut lines, mut words) = (0, 0);
    for chunk in text.chunks(CHUNK) {
        ticker.tick_n(chunk.len());
        lines += count_eq_chunk(level, chunk, b'\n');
        words += word_starts_chunk(level, chunk, prev);
        prev = chunk.last().copied();
    }
    (lines, words)
}

#[inline(always)]
fn count_where_body<F: Fn(u8) -> bool>(chunk: &[u8], f: &F) -> u64 {
    let mut n: u64 = 0;
    for &b in chunk {
        n += u64::from(f(b));
    }
    n
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn count_where_avx2<F: Fn(u8) -> bool>(chunk: &[u8], f: &F) -> u64 {
    count_where_body(chunk, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
unsafe fn count_where_avx512<F: Fn(u8) -> bool>(chunk: &[u8], f: &F) -> u64 {
    count_where_body(chunk, f)
}

/// Count bytes satisfying `f` — the validation scan of the fallible
/// workload paths. The predicate is monomorphized into each
/// feature-gated chunk kernel, so branch-free byte predicates (range
/// and equality tests) autovectorize to compare+mask ops.
pub fn count_where<F: Fn(u8) -> bool + Send + Sync>(hay: &[u8], f: F) -> u64 {
    let level = active_level();
    crate::counters::count_reads(hay.len());
    let mut ticker = PollTicker::new();
    let mut n = 0;
    for chunk in hay.chunks(CHUNK) {
        ticker.tick_n(chunk.len());
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch invariant — level ≤ detected.
        match level {
            SimdLevel::Scalar => n += count_where_body(chunk, &f),
            SimdLevel::Avx2 => n += unsafe { count_where_avx2(chunk, &f) },
            SimdLevel::Avx512 => n += unsafe { count_where_avx512(chunk, &f) },
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            n += count_where_body(chunk, &f);
        }
    }
    n
}

/// [`wc_count`] with a per-chunk fault-injection poll.
pub fn try_wc_count(text: &[u8]) -> Result<(u64, u64), Interrupted> {
    let level = active_level();
    crate::counters::count_reads(text.len());
    let mut ticker = PollTicker::new();
    let (mut lines, mut words) = (0, 0);
    let mut prev: Option<u8> = None;
    let mut at = 0;
    for chunk in text.chunks(CHUNK) {
        ticker.tick_n(chunk.len());
        if crate::faults::poll() {
            return Err(Interrupted { at });
        }
        lines += count_eq_chunk(level, chunk, b'\n');
        words += word_starts_chunk(level, chunk, prev);
        prev = chunk.last().copied();
        at += chunk.len();
    }
    Ok((lines, words))
}

// ---------------------------------------------------------------------
// Map / tabulate chunk kernels (generic; monomorphized under each
// feature set so simple arithmetic closures autovectorize)
// ---------------------------------------------------------------------

#[inline(always)]
fn map_chunk_body<T: Copy, U: Send, F: Fn(T) -> U>(chunk: &[T], w: &mut BlockWriter<'_, U>, f: &F) {
    for &x in chunk {
        w.push(f(x));
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn map_chunk_avx2<T: Copy, U: Send, F: Fn(T) -> U>(
    chunk: &[T],
    w: &mut BlockWriter<'_, U>,
    f: &F,
) {
    map_chunk_body(chunk, w, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
unsafe fn map_chunk_avx512<T: Copy, U: Send, F: Fn(T) -> U>(
    chunk: &[T],
    w: &mut BlockWriter<'_, U>,
    f: &F,
) {
    map_chunk_body(chunk, w, f)
}

#[inline(always)]
fn tab_chunk_body<U: Send, F: Fn(usize) -> U>(lo: usize, hi: usize, w: &mut BlockWriter<'_, U>, f: &F) {
    for i in lo..hi {
        w.push(f(i));
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tab_chunk_avx2<U: Send, F: Fn(usize) -> U>(
    lo: usize,
    hi: usize,
    w: &mut BlockWriter<'_, U>,
    f: &F,
) {
    tab_chunk_body(lo, hi, w, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
unsafe fn tab_chunk_avx512<U: Send, F: Fn(usize) -> U>(
    lo: usize,
    hi: usize,
    w: &mut BlockWriter<'_, U>,
    f: &F,
) {
    tab_chunk_body(lo, hi, w, f)
}

// ---------------------------------------------------------------------
// Parallel drivers
// ---------------------------------------------------------------------

/// Lane-aligned block geometry for `n` elements of `T`: the policy
/// (adaptive solver, fixed heuristic, or an active
/// [`crate::policy::force_block_size`] override) picks a block size,
/// then [`bds_cost::align_to_lane`] rounds it up to a multiple of `T`'s
/// widest lane count so no vector register straddles a block seam.
fn lane_geometry<T>(n: usize, per_elem: bds_cost::ElemCost) -> bds_cost::Geometry {
    let bs = crate::policy::block_size_costed(n, per_elem);
    let g = bds_cost::Geometry {
        block_size: bs,
        num_blocks: crate::policy::num_blocks(n, bs),
    };
    bds_cost::align_to_lane(g, n, bds_cost::lane_count::<T>())
}

/// Block-parallel [`sum`]: lane-aligned blocks fan out over the ambient
/// pool, each block runs the chunked SIMD sum (polling cancellation),
/// and the per-block partials are folded in block order — deterministic
/// for a given level and geometry.
pub fn par_sum<T: SimdElem>(xs: &[T]) -> T {
    if xs.is_empty() {
        return T::ZERO;
    }
    let level = active_level();
    crate::counters::count_reads(xs.len());
    let g = lane_geometry::<T>(xs.len(), bds_cost::SIMPLE);
    if g.num_blocks <= 1 {
        return sum_with_level(level, xs);
    }
    let sums = build_vec(g.num_blocks, |pv| {
        bds_pool::apply(g.num_blocks, |j| {
            let lo = j * g.block_size;
            let hi = (lo + g.block_size).min(xs.len());
            pv.writer(j).push(sum_with_level(level, &xs[lo..hi]));
        });
    });
    let mut acc = T::ZERO;
    for s in sums {
        acc = acc.add(s);
    }
    acc
}

macro_rules! par_minmax_driver {
    ($name:ident, $seq:ident, $chunk_fn:ident, $fold:ident, $doc:literal) => {
        #[doc = $doc]
        pub fn $name<T: SimdOrd>(xs: &[T]) -> Option<T> {
            if xs.is_empty() {
                return None;
            }
            let g = lane_geometry::<T>(xs.len(), bds_cost::SIMPLE);
            if g.num_blocks <= 1 {
                return $seq(xs);
            }
            let level = active_level();
            crate::counters::count_reads(xs.len());
            let bests = build_vec(g.num_blocks, |pv| {
                bds_pool::apply(g.num_blocks, |j| {
                    let lo = j * g.block_size;
                    let hi = (lo + g.block_size).min(xs.len());
                    let block = &xs[lo..hi];
                    let mut ticker = PollTicker::new();
                    let mut best: Option<T> = None;
                    for chunk in block.chunks(CHUNK) {
                        ticker.tick_n(chunk.len());
                        let m = T::$chunk_fn(level, chunk);
                        best = Some(match best {
                            None => m,
                            Some(b) => b.$fold(m),
                        });
                    }
                    pv.writer(j)
                        .push(best.expect("lane-aligned geometry produced an empty block"));
                });
            });
            bests.into_iter().reduce(|a, b| a.$fold(b))
        }
    };
}

par_minmax_driver!(
    par_min,
    min,
    min_chunk,
    min,
    "Block-parallel [`min`] over lane-aligned blocks on the ambient pool."
);
par_minmax_driver!(
    par_max,
    max,
    max_chunk,
    max,
    "Block-parallel [`max`] over lane-aligned blocks on the ambient pool."
);

/// Block-parallel [`count_eq`] — the parallel newline counter.
pub fn par_count_eq(hay: &[u8], needle: u8) -> u64 {
    if hay.is_empty() {
        return 0;
    }
    let g = lane_geometry::<u8>(hay.len(), bds_cost::SIMPLE);
    if g.num_blocks <= 1 {
        return count_eq(hay, needle);
    }
    let level = active_level();
    crate::counters::count_reads(hay.len());
    let counts = build_vec(g.num_blocks, |pv| {
        bds_pool::apply(g.num_blocks, |j| {
            let lo = j * g.block_size;
            let hi = (lo + g.block_size).min(hay.len());
            let block = &hay[lo..hi];
            let mut ticker = PollTicker::new();
            let mut n = 0;
            for chunk in block.chunks(CHUNK) {
                ticker.tick_n(chunk.len());
                n += count_eq_chunk(level, chunk, needle);
            }
            pv.writer(j).push(n);
        });
    });
    counts.into_iter().sum()
}

/// Block-parallel [`wc_count`]: lane-aligned blocks fan out over the
/// ambient pool, each counting its slice with [`wc_count_with_prev`]
/// (seam byte = the last byte of the previous block), partials summed
/// in block order.
pub fn par_wc_count(text: &[u8]) -> (u64, u64) {
    if text.is_empty() {
        return (0, 0);
    }
    let g = lane_geometry::<u8>(text.len(), bds_cost::SIMPLE);
    if g.num_blocks <= 1 {
        return wc_count(text);
    }
    let partials = build_vec(g.num_blocks, |pv| {
        bds_pool::apply(g.num_blocks, |j| {
            let lo = j * g.block_size;
            let hi = (lo + g.block_size).min(text.len());
            let prev = if lo == 0 { None } else { Some(text[lo - 1]) };
            pv.writer(j).push(wc_count_with_prev(&text[lo..hi], prev));
        });
    });
    partials
        .into_iter()
        .fold((0, 0), |(l, w), (bl, bw)| (l + bl, w + bw))
}

/// Block-parallel [`positions_eq`]: phase 1 counts matches per block
/// (vectorized), phase 2 exclusive-scans the counts into output
/// offsets, phase 3 extracts each block's positions into its exact
/// slot of one budget-charged allocation.
pub fn par_positions_eq(hay: &[u8], needle: u8) -> Vec<usize> {
    if hay.is_empty() {
        return Vec::new();
    }
    let level = active_level();
    let g = lane_geometry::<u8>(hay.len(), bds_cost::SIMPLE);
    let nb = g.num_blocks;
    let block = |j: usize| {
        let lo = j * g.block_size;
        (lo, (lo + g.block_size).min(hay.len()))
    };
    let counts = build_vec(nb, |pv| {
        bds_pool::apply(nb, |j| {
            let (lo, hi) = block(j);
            let mut ticker = PollTicker::new();
            let mut n = 0usize;
            for chunk in hay[lo..hi].chunks(CHUNK) {
                ticker.tick_n(chunk.len());
                n += count_eq_chunk(level, chunk, needle) as usize;
            }
            pv.writer(j).push(n);
        });
    });
    let (offsets, total) =
        crate::util::array_scan_exclusive(&counts, 0usize, &|a: &usize, b: &usize| a + b);
    crate::util::charge_elems::<usize>(total);
    crate::counters::count_allocs(total);
    build_vec(total, |pv| {
        bds_pool::apply(nb, |j| {
            let (lo, hi) = block(j);
            let mut w = pv.writer(offsets[j]);
            let mut ticker = PollTicker::new();
            let mut base = lo;
            for chunk in hay[lo..hi].chunks(CHUNK) {
                ticker.tick_n(chunk.len());
                if count_eq_chunk(level, chunk, needle) > 0 {
                    for (i, &b) in chunk.iter().enumerate() {
                        if b == needle {
                            w.push(base + i);
                        }
                    }
                }
                base += chunk.len();
            }
        });
    })
}

/// Block-parallel SIMD map: `out[i] = f(xs[i])`. The closure is
/// monomorphized inside each feature-gated chunk kernel, so simple
/// arithmetic closures autovectorize at the dispatched width. Allocates
/// through the `PartialVec` protocol of `crate::util` (budget-charged,
/// panic-safe) and polls cancellation every [`CHUNK`] elements.
pub fn par_map<T, U, F>(xs: &[T], f: F) -> Vec<U>
where
    T: Copy + Sync,
    U: Send,
    F: Fn(T) -> U + Send + Sync,
{
    let level = active_level();
    crate::counters::count_reads(xs.len());
    crate::util::charge_elems::<U>(xs.len());
    let g = lane_geometry::<U>(xs.len(), bds_cost::SIMPLE);
    build_vec(xs.len(), |pv| {
        bds_pool::apply(g.num_blocks, |j| {
            let lo = j * g.block_size;
            let hi = (lo + g.block_size).min(xs.len());
            let mut w = pv.writer(lo);
            let mut ticker = PollTicker::new();
            for chunk in xs[lo..hi].chunks(CHUNK) {
                ticker.tick_n(chunk.len());
                #[cfg(target_arch = "x86_64")]
                // SAFETY: dispatch invariant — level ≤ detected.
                match level {
                    SimdLevel::Scalar => map_chunk_body(chunk, &mut w, &f),
                    SimdLevel::Avx2 => unsafe { map_chunk_avx2(chunk, &mut w, &f) },
                    SimdLevel::Avx512 => unsafe { map_chunk_avx512(chunk, &mut w, &f) },
                }
                #[cfg(not(target_arch = "x86_64"))]
                map_chunk_body(chunk, &mut w, &f);
            }
        });
    })
}

/// Block-parallel SIMD tabulate: `out[i] = f(i)` for `i in 0..n`. Same
/// contract as [`par_map`]; this is the index-space variant the
/// mandelbrot and image workloads build on.
pub fn par_tabulate<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Send + Sync,
{
    let level = active_level();
    crate::util::charge_elems::<U>(n);
    let g = lane_geometry::<U>(n, bds_cost::SIMPLE);
    build_vec(n, |pv| {
        bds_pool::apply(g.num_blocks, |j| {
            let lo = j * g.block_size;
            let hi = (lo + g.block_size).min(n);
            let mut w = pv.writer(lo);
            let mut ticker = PollTicker::new();
            let mut c = lo;
            while c < hi {
                let end = (c + CHUNK).min(hi);
                ticker.tick_n(end - c);
                #[cfg(target_arch = "x86_64")]
                // SAFETY: dispatch invariant — level ≤ detected.
                match level {
                    SimdLevel::Scalar => tab_chunk_body(c, end, &mut w, &f),
                    SimdLevel::Avx2 => unsafe { tab_chunk_avx2(c, end, &mut w, &f) },
                    SimdLevel::Avx512 => unsafe { tab_chunk_avx512(c, end, &mut w, &f) },
                }
                #[cfg(not(target_arch = "x86_64"))]
                tab_chunk_body(c, end, &mut w, &f);
                c = end;
            }
        });
    })
}

/// Block-parallel exclusive prefix sum with SIMD block totals: phase 1
/// computes per-block sums with the vector kernels, phase 2 scans the
/// small totals array sequentially, phase 3 writes each block's
/// prefixes (scalar inner loop — a true serial dependency — but still
/// chunk-polled). Returns `(prefixes, total)` like [`crate::Seq::scan`]
/// with `+`.
pub fn par_scan_add<T: SimdElem>(xs: &[T]) -> (Vec<T>, T) {
    if xs.is_empty() {
        return (Vec::new(), T::ZERO);
    }
    let level = active_level();
    crate::counters::count_reads(xs.len());
    crate::util::charge_elems::<T>(xs.len());
    let g = lane_geometry::<T>(xs.len(), bds_cost::SIMPLE);
    let nb = g.num_blocks;
    let sums = build_vec(nb, |pv| {
        bds_pool::apply(nb, |j| {
            let lo = j * g.block_size;
            let hi = (lo + g.block_size).min(xs.len());
            pv.writer(j).push(sum_with_level(level, &xs[lo..hi]));
        });
    });
    let (offsets, total) =
        crate::util::array_scan_exclusive(&sums, T::ZERO, &|a: &T, b: &T| (*a).add(*b));
    let out = build_vec(xs.len(), |pv| {
        bds_pool::apply(nb, |j| {
            let lo = j * g.block_size;
            let hi = (lo + g.block_size).min(xs.len());
            let mut w = pv.writer(lo);
            let mut ticker = PollTicker::new();
            let mut acc = offsets[j];
            for chunk in xs[lo..hi].chunks(CHUNK) {
                ticker.tick_n(chunk.len());
                for &x in chunk {
                    w.push(acc);
                    acc = acc.add(x);
                }
            }
        });
    });
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_sync::test_lock;

    fn ulp_close_f64(a: f64, b: f64, rel: f64) -> bool {
        if a == b {
            return true;
        }
        (a - b).abs() <= rel * a.abs().max(b.abs())
    }

    #[test]
    fn level_ordering_and_names() {
        assert!(SimdLevel::Scalar < SimdLevel::Avx2);
        assert!(SimdLevel::Avx2 < SimdLevel::Avx512);
        assert_eq!(SimdLevel::Avx512.name(), "avx512");
        assert_eq!(SimdLevel::Scalar.vector_bytes(), 16);
        assert_eq!(SimdLevel::Avx512.vector_bytes(), 64);
    }

    #[test]
    fn supported_levels_starts_at_scalar() {
        let levels = supported_levels();
        assert_eq!(levels[0], SimdLevel::Scalar);
        assert!(levels.iter().all(|&l| l <= detected_level()));
        assert_eq!(*levels.last().unwrap(), detected_level());
    }

    #[test]
    fn force_guard_caps_and_restores() {
        let _l = test_lock();
        let before = active_level();
        {
            let g = force_level(SimdLevel::Scalar);
            assert_eq!(g.applied(), SimdLevel::Scalar);
            assert_eq!(active_level(), SimdLevel::Scalar);
            // Nested guard: request the moon, get at most the CPU.
            {
                let g2 = force_level(SimdLevel::Avx512);
                assert!(g2.applied() <= detected_level());
                assert_eq!(active_level(), g2.applied());
            }
            assert_eq!(active_level(), SimdLevel::Scalar);
        }
        assert_eq!(active_level(), before);
    }

    #[test]
    fn int_sums_bit_identical_across_levels() {
        let _l = test_lock();
        // Lengths straddling chunk and lane boundaries on purpose.
        for n in [0usize, 1, 7, 63, 64, 65, 1023, 1024, 1025, 10_000] {
            let xs: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
            let expect: u64 = xs.iter().fold(0u64, |a, &b| a.wrapping_add(b));
            for level in supported_levels() {
                let _g = force_level(level);
                assert_eq!(sum(&xs), expect, "level {level:?} n {n}");
            }
            let ys: Vec<i32> = (0..n as i64).map(|i| (i as i32).wrapping_mul(-77)).collect();
            let expect: i32 = ys.iter().fold(0i32, |a, &b| a.wrapping_add(b));
            for level in supported_levels() {
                let _g = force_level(level);
                assert_eq!(sum(&ys), expect, "level {level:?} n {n}");
            }
        }
    }

    #[test]
    fn min_max_match_std_across_levels() {
        let _l = test_lock();
        let xs: Vec<i64> = (0..5_000i64).map(|i| (i * 2654435761 % 10_007) - 5_000).collect();
        for level in supported_levels() {
            let _g = force_level(level);
            assert_eq!(min(&xs), xs.iter().copied().min());
            assert_eq!(max(&xs), xs.iter().copied().max());
        }
        assert_eq!(min::<u32>(&[]), None);
        assert_eq!(max::<u32>(&[]), None);
    }

    #[test]
    fn float_sums_ulp_bounded_across_levels() {
        let _l = test_lock();
        let xs: Vec<f64> = (0..30_000).map(|i| ((i % 1000) as f64) * 0.001 - 0.3).collect();
        let oracle = {
            let _g = force_level(SimdLevel::Scalar);
            sum(&xs)
        };
        for level in supported_levels() {
            let _g = force_level(level);
            let got = sum(&xs);
            assert!(
                ulp_close_f64(got, oracle, 1e-12),
                "level {level:?}: {got} vs {oracle}"
            );
        }
    }

    #[test]
    fn byte_kernels_match_naive() {
        let _l = test_lock();
        let text: Vec<u8> = (0..20_000u32)
            .map(|i| match i % 17 {
                0 => b'\n',
                1 | 5 => b' ',
                2 => b'\t',
                k => b'a' + (k as u8 % 26),
            })
            .collect();
        let naive_nl = text.iter().filter(|&&b| b == b'\n').count() as u64;
        let naive_words = text
            .split(|&b| b == b' ' || b == b'\n' || b == b'\t')
            .filter(|w| !w.is_empty())
            .count() as u64;
        let naive_pos: Vec<usize> =
            text.iter().enumerate().filter(|(_, &b)| b == b'\n').map(|(i, _)| i).collect();
        for level in supported_levels() {
            let _g = force_level(level);
            assert_eq!(count_eq(&text, b'\n'), naive_nl, "level {level:?}");
            assert_eq!(wc_count(&text), (naive_nl, naive_words), "level {level:?}");
            assert_eq!(positions_eq(&text, b'\n'), naive_pos, "level {level:?}");
        }
    }

    #[test]
    fn word_starts_handles_chunk_seams() {
        let _l = test_lock();
        // A word spanning the CHUNK boundary must count once; a space
        // just before the boundary must start a new word after it.
        let mut text = vec![b'x'; CHUNK - 1];
        text.push(b'y'); // continues across the seam
        text.extend_from_slice(b"zz more");
        let (_, words) = wc_count(&text);
        assert_eq!(words, 2);
        let mut text = vec![b'x'; CHUNK - 1];
        text.push(b' ');
        text.extend_from_slice(b"after");
        let (_, words) = wc_count(&text);
        assert_eq!(words, 2);
    }

    #[test]
    fn parallel_drivers_match_sequential() {
        let _l = test_lock();
        let pool = bds_pool::Pool::new(3);
        pool.install(|| {
            let xs: Vec<u64> = (0..200_000u64).map(|i| i.wrapping_mul(0xDEAD_BEEF)).collect();
            let expect: u64 = xs.iter().fold(0u64, |a, &b| a.wrapping_add(b));
            for level in supported_levels() {
                let _g = force_level(level);
                assert_eq!(par_sum(&xs), expect, "level {level:?}");
            }
            let ys: Vec<i64> = (0..100_000i64).map(|i| (i * 31) % 9973 - 5000).collect();
            assert_eq!(par_min(&ys), ys.iter().copied().min());
            assert_eq!(par_max(&ys), ys.iter().copied().max());
            let text: Vec<u8> = (0..300_000u32).map(|i| if i % 7 == 0 { b'\n' } else { b'q' }).collect();
            assert_eq!(par_count_eq(&text, b'\n'), count_eq(&text, b'\n'));
        });
    }

    #[test]
    fn par_map_and_tabulate_match_scalar() {
        let _l = test_lock();
        let pool = bds_pool::Pool::new(3);
        pool.install(|| {
            let xs: Vec<u32> = (0..150_000u32).collect();
            for level in supported_levels() {
                let _g = force_level(level);
                let out = par_map(&xs, |x| x.wrapping_mul(3).wrapping_add(7));
                assert_eq!(out.len(), xs.len());
                assert!(out
                    .iter()
                    .zip(&xs)
                    .all(|(&o, &x)| o == x.wrapping_mul(3).wrapping_add(7)));
                let tab = par_tabulate(100_001, |i| (i as u64) << 1);
                assert_eq!(tab.len(), 100_001);
                assert!(tab.iter().enumerate().all(|(i, &v)| v == (i as u64) << 1));
            }
        });
    }

    #[test]
    fn par_scan_matches_sequential_scan() {
        let _l = test_lock();
        let pool = bds_pool::Pool::new(3);
        pool.install(|| {
            let xs: Vec<u64> = (0..120_000u64).map(|i| i % 97).collect();
            let mut expect = Vec::with_capacity(xs.len());
            let mut acc = 0u64;
            for &x in &xs {
                expect.push(acc);
                acc = acc.wrapping_add(x);
            }
            for level in supported_levels() {
                let _g = force_level(level);
                let (got, total) = par_scan_add(&xs);
                assert_eq!(total, acc, "level {level:?}");
                assert_eq!(got, expect, "level {level:?}");
            }
        });
    }

    #[test]
    fn par_wc_and_positions_match_sequential() {
        let _l = test_lock();
        let pool = bds_pool::Pool::new(3);
        pool.install(|| {
            let text: Vec<u8> = (0..400_000u32)
                .map(|i| match i % 13 {
                    0 => b'\n',
                    1 | 4 => b' ',
                    k => b'a' + (k as u8),
                })
                .collect();
            for level in supported_levels() {
                let _g = force_level(level);
                assert_eq!(par_wc_count(&text), wc_count(&text), "level {level:?}");
                assert_eq!(
                    par_positions_eq(&text, b'\n'),
                    positions_eq(&text, b'\n'),
                    "level {level:?}"
                );
            }
        });
    }

    #[test]
    fn count_where_matches_filter() {
        let _l = test_lock();
        let text: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let naive = text.iter().filter(|&&b| b < 0x20 && b != b'\n').count() as u64;
        for level in supported_levels() {
            let _g = force_level(level);
            assert_eq!(count_where(&text, |b| b < 0x20 && b != b'\n'), naive);
        }
    }

    #[test]
    fn geometry_is_lane_aligned_for_parallel_runs() {
        let _l = test_lock();
        let g = lane_geometry::<u64>(100_003, bds_cost::SIMPLE);
        if g.num_blocks > 1 {
            assert_eq!(g.block_size % bds_cost::lane_count::<u64>(), 0);
        }
        assert!(g.block_size * g.num_blocks >= 100_003);
        assert!(g.block_size * (g.num_blocks - 1) < 100_003);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_faults_land_on_the_same_chunk_at_every_level() {
        let _l = test_lock();
        let xs: Vec<u64> = (0..10_000u64).collect();
        // Baseline: how many polls does one clean run make?
        crate::faults::reset_polls();
        let _ = try_sum(&xs);
        let polls = crate::faults::polls();
        assert_eq!(polls, xs.len().div_ceil(CHUNK) as u64);
        for nth in 1..=polls {
            let mut outcomes = Vec::new();
            for level in supported_levels() {
                let _g = force_level(level);
                let armed = crate::faults::arm(nth);
                outcomes.push(try_sum(&xs));
                drop(armed);
            }
            // Same chunk ordinal fires at every level: identical Errs.
            for o in &outcomes {
                assert_eq!(o, &outcomes[0], "nth {nth}");
                assert_eq!(
                    o.as_ref().unwrap_err().at,
                    (nth as usize - 1) * CHUNK,
                    "nth {nth}"
                );
            }
        }
        // Disarmed again: clean runs succeed.
        let expect: u64 = xs.iter().sum();
        assert_eq!(try_sum(&xs), Ok(expect));
    }

    #[test]
    fn cancellation_aborts_mid_slice() {
        let _l = test_lock();
        let token = bds_pool::CancelToken::new();
        token.cancel();
        let xs: Vec<u64> = (0..(CHUNK as u64 * 4)).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bds_pool::with_token(&token, || sum(&xs))
        }));
        let err = r.expect_err("cancelled sum must abort at a chunk boundary");
        assert!(bds_pool::cancel::is_cancellation(&*err));
    }
}
