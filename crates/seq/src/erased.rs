//! Object-safe type erasure for delayed pipelines.
//!
//! [`Seq`] is not object-safe: its GAT block type (`Seq::Block<'s>`)
//! and generic combinators rule out `dyn Seq`. That is the right
//! trade for fused static pipelines, but interpreters that build
//! pipelines *at runtime* — the `bds-check` differential harness
//! lowering a random AST, or any plugin-style composition — need a
//! single concrete type per element that can hold "some delayed
//! sequence" stage after stage without the type growing.
//!
//! This module provides that bridge:
//!
//! * [`ErasedSeq`] / [`ErasedRadSeq`] — object-safe mirrors of the
//!   [`Seq`] / [`RadSeq`] surface, with blocks erased to boxed
//!   iterators. Every geometry-negotiation method (`elem_cost`,
//!   `block_size_costed`, `pinned_block_size`, `block_size_hinted`)
//!   is forwarded, so erased pipelines run the *same* cost-model and
//!   pinned-side-wins zip logic as static ones.
//! * [`BoxSeq`] / [`BoxRad`] — owning boxes over those traits that
//!   implement [`Seq`] (and [`RadSeq`]) themselves, so an erased
//!   stage composes with every static adaptor and consumer. The
//!   monomorphization cost stays linear in the number of adaptors:
//!   each static adaptor is instantiated once at `BoxSeq<T>` /
//!   `BoxRad<T>` instead of once per pipeline shape.
//!
//! Because [`BoxSeq`] and [`BoxRad`] implement [`Seq`], they get the
//! erased lowering's consumer loops for free: every consumer default
//! routes through the indexed-stream core ([`crate::stream`]) via the
//! same [`crate::stream::of_seq`] instantiation as the monomorphized
//! pipelines — the erased leg runs the *identical* drive loop, only
//! the block streams are boxed.
//!
//! The price is one boxed-iterator virtual call per block (not per
//! element for the block body: the inner iterator still runs fused
//! inside the box) plus an allocation per block stream. For
//! correctness harnesses that is irrelevant; for performance-critical
//! code, keep the static types.
//!
//! # Examples
//!
//! ```
//! use bds_seq::prelude::*;
//! use bds_seq::erased::BoxSeq;
//!
//! // The runtime decides the stage chain; the type stays `BoxSeq<u64>`.
//! let mut s = BoxSeq::new(bds_seq::sources::tabulate(100, |i| i as u64));
//! for _ in 0..3 {
//!     s = BoxSeq::new(s.map(|x| x + 1));
//! }
//! assert_eq!(s.reduce(0, |a, b| a + b), (0..100u64).map(|x| x + 3).sum());
//! ```

use bds_cost::ElemCost;

use crate::traits::{RadSeq, Seq};

/// Object-safe mirror of [`Seq`]: the same length, block-geometry and
/// cost surface, with the block stream erased to a boxed iterator.
///
/// Implemented automatically for every [`Seq`]; consume it through
/// [`BoxSeq`], which carries the `dyn` object and re-implements
/// [`Seq`] on top.
pub trait ErasedSeq<T>: Send + Sync {
    /// [`Seq::len`].
    fn len(&self) -> usize;
    /// True when the sequence has no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// [`Seq::block_size`].
    fn block_size(&self) -> usize;
    /// [`Seq::elem_cost`].
    fn elem_cost(&self) -> ElemCost;
    /// [`Seq::block_size_costed`].
    fn block_size_costed(&self, downstream: ElemCost) -> usize;
    /// [`Seq::pinned_block_size`].
    fn pinned_block_size(&self) -> Option<usize>;
    /// [`Seq::block_size_hinted`].
    fn block_size_hinted(&self, hint: usize) -> usize;
    /// [`Seq::block`], erased to a boxed iterator.
    fn boxed_block(&self, j: usize) -> Box<dyn Iterator<Item = T> + '_>;
}

impl<S: Seq> ErasedSeq<S::Item> for S {
    fn len(&self) -> usize {
        Seq::len(self)
    }

    fn block_size(&self) -> usize {
        Seq::block_size(self)
    }

    fn elem_cost(&self) -> ElemCost {
        Seq::elem_cost(self)
    }

    fn block_size_costed(&self, downstream: ElemCost) -> usize {
        Seq::block_size_costed(self, downstream)
    }

    fn pinned_block_size(&self) -> Option<usize> {
        Seq::pinned_block_size(self)
    }

    fn block_size_hinted(&self, hint: usize) -> usize {
        Seq::block_size_hinted(self, hint)
    }

    fn boxed_block(&self, j: usize) -> Box<dyn Iterator<Item = S::Item> + '_> {
        Box::new(Seq::block(self, j))
    }
}

/// Object-safe mirror of [`RadSeq`]: [`ErasedSeq`] plus random access.
/// Consume it through [`BoxRad`].
pub trait ErasedRadSeq<T>: ErasedSeq<T> {
    /// [`RadSeq::get`].
    fn get_at(&self, i: usize) -> T;
}

impl<S: RadSeq> ErasedRadSeq<S::Item> for S {
    fn get_at(&self, i: usize) -> S::Item {
        RadSeq::get(self, i)
    }
}

/// An owned, type-erased delayed sequence (the paper's BID shape with
/// the concrete pipeline type hidden).
///
/// `BoxSeq<T>` implements [`Seq`], so it composes with every static
/// adaptor and consumer; wrap the result of such a composition in
/// [`BoxSeq::new`] again to keep the running type fixed. All geometry
/// negotiation is forwarded to the erased pipeline, including the
/// pinned-side-wins zip protocol.
#[must_use = "delayed sequences do nothing until consumed"]
pub struct BoxSeq<T> {
    inner: Box<dyn ErasedSeq<T>>,
}

impl<T: Send> BoxSeq<T> {
    /// Erase `seq` behind a `BoxSeq`.
    pub fn new<S>(seq: S) -> Self
    where
        S: Seq<Item = T> + 'static,
    {
        BoxSeq {
            inner: Box::new(seq),
        }
    }
}

impl<T: Send> Seq for BoxSeq<T> {
    type Item = T;
    type Block<'s>
        = Box<dyn Iterator<Item = T> + 's>
    where
        Self: 's;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn elem_cost(&self) -> ElemCost {
        self.inner.elem_cost()
    }

    fn block_size_costed(&self, downstream: ElemCost) -> usize {
        self.inner.block_size_costed(downstream)
    }

    fn pinned_block_size(&self) -> Option<usize> {
        self.inner.pinned_block_size()
    }

    fn block_size_hinted(&self, hint: usize) -> usize {
        self.inner.block_size_hinted(hint)
    }

    fn block(&self, j: usize) -> Self::Block<'_> {
        self.inner.boxed_block(j)
    }
}

/// An owned, type-erased random-access delayed sequence (the paper's
/// RAD shape). Implements [`RadSeq`], so `take`/`skip`/`rev`/`get`
/// stay available after erasure; [`BoxRad::into_seq`] forgets random
/// access when a pipeline leaves the RAD subset.
#[must_use = "delayed sequences do nothing until consumed"]
pub struct BoxRad<T> {
    inner: Box<dyn ErasedRadSeq<T>>,
}

impl<T: Send> BoxRad<T> {
    /// Erase `seq` behind a `BoxRad`.
    pub fn new<S>(seq: S) -> Self
    where
        S: RadSeq<Item = T> + 'static,
    {
        BoxRad {
            inner: Box::new(seq),
        }
    }

    /// Forget random access, keeping only the block-iterable surface.
    pub fn into_seq(self) -> BoxSeq<T> {
        BoxSeq { inner: self.inner }
    }
}

impl<T: Send> Seq for BoxRad<T> {
    type Item = T;
    type Block<'s>
        = Box<dyn Iterator<Item = T> + 's>
    where
        Self: 's;

    fn len(&self) -> usize {
        ErasedSeq::len(&*self.inner)
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn elem_cost(&self) -> ElemCost {
        self.inner.elem_cost()
    }

    fn block_size_costed(&self, downstream: ElemCost) -> usize {
        self.inner.block_size_costed(downstream)
    }

    fn pinned_block_size(&self) -> Option<usize> {
        self.inner.pinned_block_size()
    }

    fn block_size_hinted(&self, hint: usize) -> usize {
        self.inner.block_size_hinted(hint)
    }

    fn block(&self, j: usize) -> Self::Block<'_> {
        self.inner.boxed_block(j)
    }
}

impl<T: Send> RadSeq for BoxRad<T> {
    fn get(&self, i: usize) -> T {
        self.inner.get_at(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{from_slice, tabulate};

    #[test]
    fn boxed_pipeline_matches_static() {
        let data: Vec<u64> = (0..500).map(|i| i * 3 + 1).collect();
        let stat: Vec<u64> = from_slice(&data).map(|x| x ^ 0xAB).to_vec();
        let forced = crate::sources::Forced::from_vec(data.clone());
        let erased: Vec<u64> = BoxSeq::new(BoxSeq::new(forced).map(|x| x ^ 0xAB)).to_vec();
        assert_eq!(stat, erased);
    }

    #[test]
    fn box_rad_keeps_random_access_and_reindexing() {
        let r = BoxRad::new(tabulate(100, |i| i as u64));
        assert_eq!(r.get(7), 7);
        let taken = BoxRad::new(r.take(10));
        let revd = BoxRad::new(taken.rev());
        assert_eq!(revd.to_vec(), (0..10u64).rev().collect::<Vec<_>>());
    }

    #[test]
    fn geometry_forwarding_preserves_pins() {
        // A scanned (eager-phase, pinned) pipeline keeps its pin across
        // erasure, so pinned-side-wins zip alignment still fires.
        let (scanned, _total) = tabulate(3000, |i| i as u64).scan(0, |a, b| a + b);
        let pinned = Seq::pinned_block_size(&scanned);
        assert!(pinned.is_some());
        let erased = BoxSeq::new(scanned);
        assert_eq!(Seq::pinned_block_size(&erased), pinned);
        // Zipping the pinned erased side against a fresh source must
        // align (this panics on misalignment).
        let fresh = tabulate(3000, |i| i as u64);
        let v = erased.zip_with(fresh, |a, b| a + b).to_vec();
        assert_eq!(v.len(), 3000);
    }

    #[test]
    fn erased_consumers_cover_the_seq_surface() {
        let s = BoxSeq::new(tabulate(200, |i| i as u64));
        assert_eq!(s.count(|x| x % 2 == 0), 100);
        let s = BoxSeq::new(tabulate(200, |i| i as u64));
        assert_eq!(s.reduce(0, |a, b| a + b), 199 * 200 / 2);
        let s = BoxSeq::new(tabulate(10, |i| i as u64));
        let evens: Result<Vec<u64>, ()> = s.try_filter_collect(|x| Ok(x % 2 == 0));
        assert_eq!(evens.unwrap(), vec![0, 2, 4, 6, 8]);
    }
}
