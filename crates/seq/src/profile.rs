//! Pipeline profiling: per-stage spans, block-geometry recording, and a
//! [`profile`] entry point combining stage timings with scheduler and
//! heap statistics.
//!
//! The paper's argument is quantitative: fusion wins show up as fewer
//! eager phases, fewer materialized arrays, and block counts tracking
//! `8P`. This module makes those claims observable. The library's eager
//! phases (scan's phases 1-2, filter's packing, flatten's offset scan)
//! and delayed consumers (`reduce`, `to_vec`/`force`, `for_each`,
//! `count`) each record a *span* — wall time plus the block geometry they
//! ran with — into a small table of relaxed atomics.
//!
//! Everything is compiled in (no feature gate) but dormant: while no
//! [`profile`] call is active, a span is one relaxed load and a branch,
//! taken once per *pipeline stage invocation* (not per element or per
//! block), so the overhead is unmeasurable and the instrumentation can
//! stay on in release builds.
//!
//! ```
//! use bds_seq::prelude::*;
//! use bds_seq::profile;
//!
//! let (total, report) = profile::profile(|| {
//!     tabulate(100_000, |i| i as u64)
//!         .map(|x| x * 2)
//!         .scan(0, |a, b| a + b)
//!         .0
//!         .reduce(0, u64::max)
//! });
//! assert!(total > 0);
//! assert!(report.stage(profile::Stage::ScanEager).is_some());
//! println!("{}", report.render());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// A pipeline stage the library instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// `scan`/`scan_incl` phases 1-2: per-block sums + sequential scan.
    ScanEager,
    /// `filter`/`filter_op` packing: streaming survivors per block.
    FilterEager,
    /// `flatten` offset construction (lengths + exclusive scan).
    FlattenEager,
    /// Materialization (`to_vec`/`force`): the delayed consumption that
    /// writes every element into a fresh buffer.
    Force,
    /// Delayed consumption by `reduce`.
    Reduce,
    /// Delayed consumption by `for_each`/`for_each_indexed`.
    ForEach,
    /// Delayed consumption by `count`.
    Count,
}

/// All stages, in render order.
pub const STAGES: [Stage; 7] = [
    Stage::ScanEager,
    Stage::FilterEager,
    Stage::FlattenEager,
    Stage::Force,
    Stage::Reduce,
    Stage::ForEach,
    Stage::Count,
];

impl Stage {
    #[inline]
    fn index(self) -> usize {
        match self {
            Stage::ScanEager => 0,
            Stage::FilterEager => 1,
            Stage::FlattenEager => 2,
            Stage::Force => 3,
            Stage::Reduce => 4,
            Stage::ForEach => 5,
            Stage::Count => 6,
        }
    }

    /// Human-readable label used by [`ProfileReport::render`].
    pub fn label(self) -> &'static str {
        match self {
            Stage::ScanEager => "scan (eager 1-2)",
            Stage::FilterEager => "filter (eager pack)",
            Stage::FlattenEager => "flatten (eager offsets)",
            Stage::Force => "force/to_vec (delayed)",
            Stage::Reduce => "reduce (delayed)",
            Stage::ForEach => "for_each (delayed)",
            Stage::Count => "count (delayed)",
        }
    }
}

const NUM_STAGES: usize = STAGES.len();

#[derive(Default)]
struct StageSlot {
    calls: AtomicU64,
    total_ns: AtomicU64,
    elements: AtomicU64,
    blocks: AtomicU64,
    /// Block size most recently recorded for this stage (0 = none).
    block_size: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn slots() -> &'static [StageSlot; NUM_STAGES] {
    static SLOTS: [StageSlot; NUM_STAGES] = [
        StageSlot {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            elements: AtomicU64::new(0),
            blocks: AtomicU64::new(0),
            block_size: AtomicU64::new(0),
        },
        StageSlot {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            elements: AtomicU64::new(0),
            blocks: AtomicU64::new(0),
            block_size: AtomicU64::new(0),
        },
        StageSlot {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            elements: AtomicU64::new(0),
            blocks: AtomicU64::new(0),
            block_size: AtomicU64::new(0),
        },
        StageSlot {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            elements: AtomicU64::new(0),
            blocks: AtomicU64::new(0),
            block_size: AtomicU64::new(0),
        },
        StageSlot {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            elements: AtomicU64::new(0),
            blocks: AtomicU64::new(0),
            block_size: AtomicU64::new(0),
        },
        StageSlot {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            elements: AtomicU64::new(0),
            blocks: AtomicU64::new(0),
            block_size: AtomicU64::new(0),
        },
        StageSlot {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            elements: AtomicU64::new(0),
            blocks: AtomicU64::new(0),
            block_size: AtomicU64::new(0),
        },
    ];
    &SLOTS
}

/// Is a [`profile`] region currently active?
#[inline]
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII span: created at a stage's entry, records wall time on drop.
/// Inert (no clock read) while profiling is disabled.
pub struct SpanGuard {
    stage: Stage,
    start: Option<Instant>,
}

/// Open a span for `stage`. One relaxed load when profiling is off.
#[inline]
pub fn span(stage: Stage) -> SpanGuard {
    SpanGuard {
        stage,
        start: profiling_enabled().then(Instant::now),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let slot = &slots()[self.stage.index()];
            slot.calls.fetch_add(1, Ordering::Relaxed);
            slot.total_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// Record the block geometry a stage ran with: `len` elements in `nb`
/// blocks of `bs`. No-op while profiling is disabled.
#[inline]
pub fn record_geometry(stage: Stage, len: usize, bs: usize, nb: usize) {
    if !profiling_enabled() {
        return;
    }
    let slot = &slots()[stage.index()];
    slot.elements.fetch_add(len as u64, Ordering::Relaxed);
    slot.blocks.fetch_add(nb as u64, Ordering::Relaxed);
    slot.block_size.store(bs as u64, Ordering::Relaxed);
}

/// Record segment structure for stages whose unit is an inner sequence
/// rather than a block (flatten: `len` total elements over `nparts`
/// inner sequences). Leaves the block size unresolved on purpose —
/// flatten's *output* geometry stays lazy until a consumer runs.
#[inline]
pub fn record_segments(stage: Stage, len: usize, nparts: usize) {
    if !profiling_enabled() {
        return;
    }
    let slot = &slots()[stage.index()];
    slot.elements.fetch_add(len as u64, Ordering::Relaxed);
    slot.blocks.fetch_add(nparts as u64, Ordering::Relaxed);
}

fn reset_slots() {
    for slot in slots() {
        slot.calls.store(0, Ordering::Relaxed);
        slot.total_ns.store(0, Ordering::Relaxed);
        slot.elements.store(0, Ordering::Relaxed);
        slot.blocks.store(0, Ordering::Relaxed);
        slot.block_size.store(0, Ordering::Relaxed);
    }
}

/// One stage's accumulated numbers within a [`profile`] region.
#[derive(Debug, Clone, Copy)]
pub struct StageReport {
    /// Which stage.
    pub stage: Stage,
    /// Times the stage ran.
    pub calls: u64,
    /// Total wall nanoseconds across those calls.
    pub total_ns: u64,
    /// Total elements processed (delayed lengths as seen by the stage).
    pub elements: u64,
    /// Total blocks (or, for flatten, inner segments) traversed.
    pub blocks: u64,
    /// Block size of the most recent call (0 when not applicable).
    pub block_size: u64,
}

/// Everything observed during one [`profile`] region.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Wall time of the whole region in nanoseconds.
    pub wall_ns: u64,
    /// Per-stage numbers, only stages that ran.
    pub stages: Vec<StageReport>,
    /// Scheduler-counter delta of the profiled pool over the region.
    pub sched: bds_pool::PoolStats,
    /// Heap statistics at region end (`peak_since_reset` measures the
    /// region, assuming the binary installs
    /// `bds_metrics::CountingAlloc`).
    pub heap: bds_metrics::HeapStats,
    /// Element-traffic counters `(reads, writes, allocs)` over the
    /// region; all zero unless the `counters` feature is enabled.
    pub traffic: (u64, u64, u64),
}

impl ProfileReport {
    /// The report row for `stage`, if it ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Render the report as fixed-width tables (stages, then scheduler
    /// and heap summaries).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut t = bds_metrics::Table::new(vec![
            "stage", "calls", "time ms", "elements", "blocks", "blk size",
        ]);
        for s in &self.stages {
            t.row(vec![
                s.stage.label().to_string(),
                s.calls.to_string(),
                format!("{:.3}", s.total_ns as f64 / 1e6),
                s.elements.to_string(),
                s.blocks.to_string(),
                if s.block_size == 0 {
                    "-".to_string()
                } else {
                    s.block_size.to_string()
                },
            ]);
        }
        out.push_str(&t.render());

        let total = self.sched.total();
        out.push_str(&format!(
            "\nscheduler (P = {}): jobs {}  local {}  injected {}  steals {}  \
             failed-steals {}  parks {}  idle {:.3} ms\n",
            self.sched.num_threads(),
            total.jobs_executed,
            total.local_pops,
            total.injector_pops,
            total.steals,
            total.failed_steals,
            total.parks,
            total.idle_ns as f64 / 1e6,
        ));
        out.push_str(&format!(
            "heap: peak-since-reset {}  live {}  total-allocated {}\n",
            bds_metrics::fmt_mb(self.heap.peak_since_reset) + " MB",
            bds_metrics::fmt_mb(self.heap.live) + " MB",
            bds_metrics::fmt_mb(self.heap.total_allocated as usize) + " MB",
        ));
        let (r, w, a) = self.traffic;
        if (r, w, a) != (0, 0, 0) {
            out.push_str(&format!(
                "element traffic: reads {r}  writes {w}  allocs {a}\n"
            ));
        }
        out.push_str(&format!("wall: {:.3} ms\n", self.wall_ns as f64 / 1e6));
        out
    }
}

fn collect(wall_ns: u64, sched: bds_pool::PoolStats) -> ProfileReport {
    let stages: Vec<StageReport> = STAGES
        .iter()
        .filter_map(|&stage| {
            let slot = &slots()[stage.index()];
            let calls = slot.calls.load(Ordering::Relaxed);
            let elements = slot.elements.load(Ordering::Relaxed);
            if calls == 0 && elements == 0 {
                return None;
            }
            Some(StageReport {
                stage,
                calls,
                total_ns: slot.total_ns.load(Ordering::Relaxed),
                elements,
                blocks: slot.blocks.load(Ordering::Relaxed),
                block_size: slot.block_size.load(Ordering::Relaxed),
            })
        })
        .collect();
    // Feedback into the adaptive geometry model: each stage that ran with
    // known geometry and a measured wall time refines the calibrated
    // per-block overhead (EWMA; see `bds_cost::calibrate`). Pricing the
    // element work at one SIMPLE unit is safe because `observe_stage`
    // discards observations whose residual could plausibly be mispriced
    // element work — only stages with nearly empty blocks, where the
    // per-block scheduling cost is actually measurable, feed back.
    for s in &stages {
        if s.blocks > 0 && s.elements > 0 && s.total_ns > 0 {
            bds_cost::calibrate::observe_stage(s.elements, s.blocks, s.total_ns, 1);
        }
    }
    ProfileReport {
        wall_ns,
        stages,
        sched,
        heap: bds_metrics::heap_stats(),
        traffic: crate::counters::snapshot(),
    }
}

/// Profile `f` against the *ambient* pool (the enclosing pool when
/// called from a worker, otherwise the global pool). Use
/// [`profile_on`] when the closure installs into an explicit [`Pool`].
///
/// Not reentrant: a nested `profile` region resets the shared stage
/// table and the outer report will only cover stages that ran after the
/// inner region began.
///
/// [`Pool`]: bds_pool::Pool
pub fn profile<R>(f: impl FnOnce() -> R) -> (R, ProfileReport) {
    profile_impl(None, f)
}

/// Profile `f`, attributing scheduler statistics to `pool` (which `f` is
/// expected to `install` into).
pub fn profile_on<R>(pool: &bds_pool::Pool, f: impl FnOnce() -> R) -> (R, ProfileReport) {
    profile_impl(Some(pool), f)
}

fn profile_impl<R>(pool: Option<&bds_pool::Pool>, f: impl FnOnce() -> R) -> (R, ProfileReport) {
    reset_slots();
    crate::counters::reset();
    let sched_before = match pool {
        Some(p) => p.stats(),
        None => bds_pool::pool_stats(),
    };
    bds_metrics::reset_peak();
    ENABLED.store(true, Ordering::SeqCst);
    let start = Instant::now();
    // Disable on the way out even if `f` panics, so a failed profiled
    // region cannot leave the process-global instrumentation hot.
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            ENABLED.store(false, Ordering::SeqCst);
        }
    }
    let disarm = Disarm;
    let result = f();
    let wall_ns = start.elapsed().as_nanos() as u64;
    drop(disarm);
    let sched_after = match pool {
        Some(p) => p.stats(),
        None => bds_pool::pool_stats(),
    };
    (result, collect(wall_ns, sched_after.since(&sched_before)))
}

// Behavioral tests live in `tests/profile.rs`: the stage table and the
// enabled flag are process-global, so they need a test binary where no
// unrelated pipelines run concurrently. Only pure helpers are unit
// tested here.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_distinct() {
        let mut seen = [false; NUM_STAGES];
        for s in STAGES {
            assert!(!seen[s.index()], "duplicate index for {s:?}");
            seen[s.index()] = true;
            assert!(!s.label().is_empty());
        }
        assert!(seen.iter().all(|&b| b));
    }
}
