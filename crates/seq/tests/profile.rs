//! Behavioral tests for the profiling facade. The stage table and the
//! enabled flag are process-global, so every test here serializes on one
//! mutex and this binary contains no other pipeline activity.

use std::sync::{Mutex, MutexGuard, OnceLock};

use bds_seq::prelude::*;
use bds_seq::profile::{self, Stage};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

#[test]
fn profile_captures_stages_and_geometry() {
    let _g = serial();
    let pool = bds_pool::Pool::new(2);
    let ((), report) = profile::profile_on(&pool, || {
        pool.install(|| {
            let (scanned, _) = tabulate(100_000, |i| i as u64).scan(0, |a, b| a + b);
            let filtered = scanned.filter(|&x| x % 3 == 0);
            let _v = filtered.to_vec();
        })
    });
    let scan = report.stage(Stage::ScanEager).expect("scan stage recorded");
    assert_eq!(scan.calls, 1);
    assert_eq!(scan.elements, 100_000);
    assert!(scan.block_size > 0);
    // Geometry is consistent: block count tracks the resolved block size.
    let bs = scan.block_size as usize;
    assert_eq!(scan.blocks as usize, 100_000usize.div_ceil(bs));
    assert!(report.stage(Stage::FilterEager).is_some());
    assert!(report.stage(Stage::FlattenEager).is_some());
    assert!(report.stage(Stage::Force).is_some());
    let total = report.sched.total();
    assert!(total.jobs_executed > 0, "profiled pool did scheduler work");
    let rendered = report.render();
    assert!(rendered.contains("scan (eager 1-2)"));
    assert!(rendered.contains("scheduler (P = 2)"));
}

#[test]
fn profile_against_ambient_pool() {
    let _g = serial();
    let (sum, report) = profile::profile(|| {
        tabulate(50_000, |i| i as u64)
            .map(|x| x + 1)
            .reduce(0, |a, b| a + b)
    });
    assert_eq!(sum, (1..=50_000u64).sum::<u64>());
    let reduce = report.stage(Stage::Reduce).expect("reduce stage recorded");
    assert_eq!(reduce.calls, 1);
    assert_eq!(reduce.elements, 50_000);
    assert!(report.wall_ns > 0);
    assert!(report.sched.total().jobs_executed > 0);
}

#[test]
fn profile_disables_after_region_and_after_panic() {
    let _g = serial();
    let _ = profile::profile(|| tabulate(10_000, |i| i).reduce(0, |a, b| a + b));
    assert!(!profile::profiling_enabled());

    let caught = std::panic::catch_unwind(|| {
        profile::profile(|| {
            tabulate(1000usize, |i| i).for_each(|_| panic!("boom"));
        })
    });
    assert!(caught.is_err());
    assert!(
        !profile::profiling_enabled(),
        "a panicking region must not leave profiling enabled"
    );
}

#[test]
fn report_without_activity_is_empty() {
    let _g = serial();
    let (x, report) = profile::profile(|| 42);
    assert_eq!(x, 42);
    assert!(report.stages.is_empty());
    assert!(report.render().contains("wall:"));
}

#[test]
fn consumption_outside_region_records_nothing() {
    let _g = serial();
    // Warm the pipeline outside any region...
    let _ = tabulate(10_000, |i| i as u64).to_vec();
    // ...then an empty region sees none of it.
    let (_, report) = profile::profile(|| ());
    assert!(report.stage(Stage::Force).is_none());
}
