//! Integration tests for the adaptive block-geometry policy: the block
//! count a pipeline resolves at consumption time must be valid
//! (`1..=len`), monotone in the worker count, and never starve a pool on
//! inputs far larger than the machine.
//!
//! Geometry resolution reads process-global state (the policy mode and
//! the calibration table), so every test here serializes on one mutex.

use std::sync::{Mutex, MutexGuard, OnceLock};

use bds_cost::geometry::TARGET_BLOCKS_PER_WORKER;
use bds_seq::prelude::*;

fn serial() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Block count a fresh `n`-element tabulate+reduce pipeline resolves to
/// when consumed under a `p`-thread pool. A fresh pipeline per call:
/// geometry pins on first consumption (see `LazyBlockSize`).
fn adaptive_blocks(n: usize, p: usize) -> usize {
    let pool = bds_pool::Pool::new(p);
    pool.install(|| {
        let s = tabulate(n, |i| i as u64);
        let sum = s.reduce(0, |a, b| a + b);
        assert_eq!(sum, (n as u64 - 1) * n as u64 / 2);
        s.num_blocks()
    })
}

#[test]
fn adaptive_block_count_is_valid_and_monotone_in_workers() {
    let _g = serial();
    let n = 1usize << 22;
    let mut prev = 0;
    for p in [1, 2, 4] {
        let nb = adaptive_blocks(n, p);
        assert!(
            (1..=n).contains(&nb),
            "P={p}: block count {nb} outside [1, {n}]"
        );
        assert!(
            nb >= prev,
            "block count must not shrink as workers grow: P={p} gave {nb}, previous pool gave {prev}"
        );
        prev = nb;
    }
}

#[test]
fn adaptive_never_starves_workers_on_large_inputs() {
    // Regression: for len ≫ procs the solver must hand every worker at
    // least one block (and stay within the 8-per-worker target).
    let _g = serial();
    let n = 1usize << 22;
    for p in [2, 4] {
        let nb = adaptive_blocks(n, p);
        assert!(nb >= p, "P={p}: only {nb} blocks for {n} elements");
        assert!(
            nb <= TARGET_BLOCKS_PER_WORKER * p,
            "P={p}: {nb} blocks exceeds the {TARGET_BLOCKS_PER_WORKER}-per-worker target"
        );
    }
}

#[test]
fn tiny_inputs_resolve_to_one_block() {
    // 64 elements cannot amortize even one extra block's overhead at the
    // calibration clamps, whatever this machine measures.
    let _g = serial();
    let pool = bds_pool::Pool::new(4);
    pool.install(|| {
        let s = tabulate(64, |i| i);
        assert_eq!(s.reduce(0, |a, b| a + b), 64 * 63 / 2);
        assert_eq!(s.num_blocks(), 1);
    });
}

#[test]
fn fixed_policy_matches_seed_heuristic() {
    // Policy::fixed(k) must reproduce the pre-adaptive geometry exactly:
    // bs = max(MIN_BLOCK, ceil(n / kP)).
    let _g = serial();
    let _p = bds_seq::set_policy(bds_seq::Policy::fixed(8));
    let pool = bds_pool::Pool::new(2);
    let n = 1usize << 20;
    let (bs, nb) = pool.install(|| {
        let s = tabulate(n, |i| i as u64);
        assert_eq!(s.reduce(0, |a, b| a + b), (n as u64 - 1) * n as u64 / 2);
        (s.block_size(), s.num_blocks())
    });
    let want_bs = n.div_ceil(8 * 2).max(bds_seq::MIN_BLOCK);
    assert_eq!(bs, want_bs);
    assert_eq!(nb, n.div_ceil(want_bs));
}

#[test]
fn zip_aligns_fresh_side_to_scan_pinned_under_other_pool() {
    // Regression: adaptive geometry depends on time-varying inputs (live
    // worker count, refined overhead), so a scan pinned under one pool
    // and a fresh sequence resolved under another could disagree — zip
    // must align the fresh side to the pinned one instead of resolving
    // both independently.
    let _g = serial();
    let n = 1usize << 20;
    let scanned = {
        let pool = bds_pool::Pool::new(4);
        pool.install(|| tabulate(n, |i| (i % 7) as u64).scan(0, |a, b| a + b).0)
    };
    let pinned = scanned.block_size();
    let pool = bds_pool::Pool::new(2);
    let (bs, total) = pool.install(|| {
        let fresh = tabulate(n, |_| 1u64);
        let z = (&scanned).zip_with(fresh, |a, b| a + b);
        let bs = z.block_size();
        (bs, z.reduce(0, |a, b| a + b))
    });
    assert_eq!(bs, pinned, "fresh side must adopt the scan's pinned geometry");
    let mut want = n as u64; // the +1 per element
    let mut acc = 0u64;
    for i in 0..n as u64 {
        want += acc;
        acc += i % 7;
    }
    assert_eq!(total, want);
}

#[test]
fn zip_pinned_side_wins_across_thread_counts() {
    // The pinned-side-wins rule must hold whatever pool widths pinned
    // the scan and consume the zip — 1, 2, and the machine's full width
    // on either side, with the pinned sequence as either zip operand.
    // Under Adaptive policy the two pools generally resolve different
    // geometries for the same length, so any cell where the fresh side
    // kept its own resolution shows up as a block-size mismatch (and,
    // before the alignment fix, as misaligned zip blocks).
    let _g = serial();
    let n = 1usize << 20;
    let max = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .max(2);
    let mut widths = vec![1, 2, max];
    widths.dedup();
    let want_total: u64 = {
        let mut acc = 0u64;
        let mut t = n as u64; // the +1 per element from the fresh side
        for i in 0..n as u64 {
            t += acc;
            acc += i % 7;
        }
        t
    };
    for &p_pin in &widths {
        for &p_zip in &widths {
            let scanned = {
                let pool = bds_pool::Pool::new(p_pin);
                pool.install(|| tabulate(n, |i| (i % 7) as u64).scan(0, |a, b| a + b).0)
            };
            let pinned = scanned.block_size();
            let pool = bds_pool::Pool::new(p_zip);
            // Pinned sequence on the left.
            let (bs, total) = pool.install(|| {
                let fresh = tabulate(n, |_| 1u64);
                let z = (&scanned).zip_with(fresh, |a, b| a + b);
                (z.block_size(), z.reduce(0, |a, b| a + b))
            });
            assert_eq!(
                bs, pinned,
                "pin pool {p_pin}, zip pool {p_zip}: fresh right side kept its own geometry"
            );
            assert_eq!(total, want_total, "pin pool {p_pin}, zip pool {p_zip}");
            // Pinned sequence on the right.
            let (bs, total) = pool.install(|| {
                let fresh = tabulate(n, |_| 1u64);
                let z = fresh.zip_with(&scanned, |a, b| a + b);
                (z.block_size(), z.reduce(0, |a, b| a + b))
            });
            assert_eq!(
                bs, pinned,
                "pin pool {p_pin}, zip pool {p_zip}: fresh left side kept its own geometry"
            );
            assert_eq!(total, want_total, "pin pool {p_pin}, zip pool {p_zip} (reversed)");
        }
    }
}

#[test]
fn policy_guard_restores_adaptive_default() {
    let _g = serial();
    {
        let _p = bds_seq::set_policy(bds_seq::Policy::fixed(4));
        assert_eq!(bds_seq::policy(), bds_seq::Policy::fixed(4));
    }
    assert_eq!(bds_seq::policy(), bds_seq::Policy::Adaptive);
}

/// A panic injected mid-pipeline must propagate cleanly through the
/// adaptive geometry path (cancellation and drop-safety are orthogonal
/// to how the block count was chosen).
#[cfg(feature = "fault-inject")]
#[test]
fn injected_panic_propagates_through_adaptive_path() {
    use bds_seq::faults;
    let _g = serial();
    let pool = bds_pool::Pool::new(4);
    let n = 1usize << 18;
    let _armed = faults::arm(n as u64 / 2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            tabulate(n, |i| {
                faults::poll_panic();
                i as u64
            })
            .reduce(0, |a, b| a + b)
        })
    }));
    let payload = result.expect_err("the armed fault must surface at the join");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "injected fault");
    // The pool stays usable after the unwound region.
    let ok = pool.install(|| tabulate(1000, |i| i).reduce(0, |a, b| a + b));
    assert_eq!(ok, 999 * 1000 / 2);
}
