//! Exact drop accounting for the panic-safe materialization protocol.
//!
//! Every parallel materialization in the crate goes through the
//! `PartialVec`/`BlockWriter` drop-guard protocol. These tests pin the
//! contract with a construction/drop-counting element type: on success
//! every constructed element is dropped exactly once when the result is
//! dropped; when a closure panics or a fallible consumer errors
//! mid-materialization, the elements already written still drop exactly
//! once and nothing is dropped twice. No feature flags required — the
//! panics here are ordinary closure panics at fixed indices.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use bds_seq::prelude::*;

/// The block-size override is process-global; serialize the tests.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

static LIVE: AtomicI64 = AtomicI64::new(0);
static CREATED: AtomicU64 = AtomicU64::new(0);
static UNDERFLOW: AtomicBool = AtomicBool::new(false);

#[derive(Debug, PartialEq)]
struct Tok(u64);

impl Tok {
    fn new(v: u64) -> Tok {
        LIVE.fetch_add(1, Ordering::SeqCst);
        CREATED.fetch_add(1, Ordering::SeqCst);
        Tok(v)
    }
}

impl Clone for Tok {
    fn clone(&self) -> Tok {
        Tok::new(self.0)
    }
}

impl Drop for Tok {
    fn drop(&mut self) {
        if LIVE.fetch_sub(1, Ordering::SeqCst) <= 0 {
            UNDERFLOW.store(true, Ordering::SeqCst);
        }
    }
}

fn reset_counters() {
    LIVE.store(0, Ordering::SeqCst);
    CREATED.store(0, Ordering::SeqCst);
    UNDERFLOW.store(false, Ordering::SeqCst);
}

/// After everything produced by `f` has been dropped: every constructed
/// element was dropped exactly once.
fn assert_exact_drops(label: &str) {
    assert!(
        CREATED.load(Ordering::SeqCst) > 0,
        "{label}: scenario constructed nothing"
    );
    assert_eq!(
        LIVE.load(Ordering::SeqCst),
        0,
        "{label}: live count nonzero — leaked elements"
    );
    assert!(
        !UNDERFLOW.load(Ordering::SeqCst),
        "{label}: live count went negative — double drop"
    );
}

const N: usize = 1_000;

#[test]
fn to_vec_success_drops_each_element_once() {
    let _l = lock();
    let _g = bds_seq::force_block_size(64);
    reset_counters();
    {
        let v = tabulate(N, |i| Tok::new(i as u64)).to_vec();
        assert_eq!(v.len(), N);
        // All constructed elements are alive inside the vec.
        assert_eq!(LIVE.load(Ordering::SeqCst) as u64, CREATED.load(Ordering::SeqCst));
    }
    assert_exact_drops("to_vec/success");
    // to_vec constructs exactly n elements: nothing cloned, nothing
    // built and thrown away.
    assert_eq!(CREATED.load(Ordering::SeqCst), N as u64);
}

#[test]
fn to_vec_panic_drops_partials_exactly_once() {
    let _l = lock();
    let _g = bds_seq::force_block_size(64);
    reset_counters();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        tabulate(N, |i| Tok::new(i as u64))
            .map(|t| {
                if t.0 == 617 {
                    panic!("boom at 617");
                }
                t
            })
            .to_vec()
    }));
    assert!(caught.is_err(), "panic must propagate");
    assert_exact_drops("to_vec/panic");
}

#[test]
fn force_panic_drops_partials_exactly_once() {
    let _l = lock();
    let _g = bds_seq::force_block_size(32);
    reset_counters();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        tabulate(N, |i| {
            if i == 899 {
                panic!("boom at 899");
            }
            Tok::new(i as u64)
        })
        .force()
    }));
    assert!(caught.is_err(), "panic must propagate");
    assert_exact_drops("force/panic");
}

#[test]
fn unzip_success_and_panic_account_both_buffers() {
    let _l = lock();
    let _g = bds_seq::force_block_size(64);

    reset_counters();
    {
        let s = tabulate(N, |i| (Tok::new(i as u64), Tok::new((i * 2) as u64)));
        let (a, b) = bds_seq::unzip(&s);
        assert_eq!(a.len(), N);
        assert_eq!(b.len(), N);
    }
    assert_exact_drops("unzip/success");
    assert_eq!(CREATED.load(Ordering::SeqCst), 2 * N as u64);

    reset_counters();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let s = tabulate(N, |i| {
            if i == 500 {
                panic!("boom at 500");
            }
            (Tok::new(i as u64), Tok::new((i * 2) as u64))
        });
        bds_seq::unzip(&s)
    }));
    assert!(caught.is_err(), "panic must propagate");
    assert_exact_drops("unzip/panic");
}

#[test]
fn filter_panic_drops_kept_elements_exactly_once() {
    let _l = lock();
    let _g = bds_seq::force_block_size(64);
    reset_counters();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        tabulate(N, |i| Tok::new(i as u64))
            .filter(|t| {
                if t.0 == 731 {
                    panic!("boom at 731");
                }
                t.0 % 2 == 0
            })
            .to_vec()
    }));
    assert!(caught.is_err(), "panic must propagate");
    assert_exact_drops("filter/panic");
}

#[test]
fn scan_panic_in_delayed_phase_drops_exactly_once() {
    let _l = lock();
    let _g = bds_seq::force_block_size(64);
    reset_counters();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        // The panic index only exists in phase 3 (the delayed rescan
        // under to_vec): phase 1 folds blocks without cloning prefixes.
        let (s, _total) =
            tabulate(N, |i| Tok::new(i as u64)).scan(Tok::new(0), |a, b| Tok::new(a.0 + b.0));
        s.map(|t| {
            if t.0 > 100_000 {
                panic!("boom in phase 3");
            }
            t
        })
        .to_vec()
    }));
    assert!(caught.is_err(), "panic must propagate");
    assert_exact_drops("scan/panic-phase3");
}

#[test]
fn try_reduce_err_path_drops_partial_accumulators() {
    let _l = lock();
    let _g = bds_seq::force_block_size(64);
    reset_counters();
    let r = tabulate(N, |i| Tok::new(i as u64)).try_reduce(Tok::new(0), |a, b| {
        if b.0 == 421 {
            Err("boom at 421")
        } else {
            Ok(Tok::new(a.0 + b.0))
        }
    });
    assert_eq!(r.unwrap_err(), "boom at 421");
    assert_exact_drops("try_reduce/err");
}

#[test]
fn try_filter_collect_err_path_drops_kept_elements() {
    let _l = lock();
    let _g = bds_seq::force_block_size(64);
    reset_counters();
    let r = tabulate(N, |i| Tok::new(i as u64)).try_filter_collect(|t| {
        if t.0 == 555 {
            Err("boom at 555")
        } else {
            Ok(t.0 % 2 == 0)
        }
    });
    assert_eq!(r.unwrap_err(), "boom at 555");
    assert_exact_drops("try_filter_collect/err");
}
