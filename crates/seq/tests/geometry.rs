//! Regression test for the block-geometry capture bug: delayed
//! sequences used to resolve `block_size(len)` at *construction*, which
//! (a) spawned the global pool as a side effect of merely building a
//! pipeline and (b) froze the geometry to whatever pool happened to be
//! ambient at build time instead of the pool that consumes the result.
//!
//! This lives in its own test binary (one `#[test]`) so the process
//! verifiably has no pool when the pipeline is built.

use std::sync::atomic::{AtomicUsize, Ordering};

use bds_seq::prelude::*;
use bds_seq::MIN_BLOCK;

#[test]
fn geometry_resolves_against_consuming_pool() {
    // Build a pipeline with NO pool anywhere: must not spawn one.
    let n = 1usize << 20;
    let s = tabulate(n, |i| i as u64).map(|x| x + 1);
    assert_eq!(s.len(), n);
    assert!(
        !bds_pool::global_pool_exists(),
        "constructing a delayed pipeline must not spawn the global pool"
    );

    // Consume under an explicit 2-thread pool: geometry must match P=2,
    // not the 0-thread world the pipeline was built in.
    let pool = bds_pool::Pool::new(2);
    let (bs, nb, sum) = pool.install(|| {
        let bs = s.block_size();
        (bs, s.num_blocks(), s.reduce(0, |a, b| a + b))
    });
    // block_size = max(MIN_BLOCK, ceil(n / 8P)) with P = 2.
    let want_bs = (n.div_ceil(16)).max(MIN_BLOCK);
    assert_eq!(bs, want_bs, "block size must come from the consuming pool");
    assert_eq!(nb, n.div_ceil(want_bs));
    assert_eq!(nb, 16, "2^20 elements under P=2 is exactly 8P = 16 blocks");
    assert_eq!(sum, (1..=n as u64).sum::<u64>());

    // Consuming under the explicit pool must not have touched the
    // global one either.
    assert!(
        !bds_pool::global_pool_exists(),
        "consuming under an explicit pool must not spawn the global pool"
    );

    // Once resolved, the geometry is pinned: re-consuming the same value
    // elsewhere (even under a different pool) replays identical blocks.
    let other = bds_pool::Pool::new(4);
    let bs_again = other.install(|| s.block_size());
    assert_eq!(bs_again, want_bs, "first consumption pins the geometry");

    // And a *fresh* pipeline consumed under the 4-thread pool resolves
    // against it: same n, twice the parallelism, half the block size.
    let fresh = tabulate(n, |i| i as u64);
    let bs4 = other.install(|| fresh.block_size());
    assert_eq!(bs4, (n.div_ceil(32)).max(MIN_BLOCK));
}

#[test]
fn eager_phases_still_run_where_invoked() {
    // scan's phases 1-2 are eager: they run (and resolve geometry)
    // wherever .scan() is called, so its seeds match the pool in effect
    // *there*. The delayed phase 3 then replays that pinned geometry
    // even if consumed elsewhere — this is what pinning protects.
    let pool = bds_pool::Pool::new(2);
    let evals = AtomicUsize::new(0);
    let (scanned, total) = pool.install(|| {
        tabulate(100_000, |_| {
            evals.fetch_add(1, Ordering::Relaxed);
            1u64
        })
        .scan(0, |a, b| a + b)
    });
    assert_eq!(evals.load(Ordering::Relaxed), 100_000, "phases 1-2 ran eagerly");
    assert_eq!(total, 100_000);
    let bs_pinned = scanned.block_size();
    // Consume under a different pool: results stay correct because the
    // seed array and the block structure were pinned together.
    let other = bds_pool::Pool::new(4);
    let v = other.install(|| scanned.to_vec());
    assert_eq!(scanned.block_size(), bs_pinned);
    assert_eq!(v[12_345], 12_345);
    assert_eq!(v.len(), 100_000);
}
