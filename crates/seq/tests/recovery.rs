//! Acceptance tests for block-granular fault recovery: a transient
//! fault injected at a known element under `RetryPolicy` must yield a
//! result bit-identical to the unfaulted sequential oracle — across the
//! monomorphized, erased, and dynamic lowerings and across geometries —
//! with exactly one block retry and no whole-pipeline re-execution. A
//! deterministic fault must surface one typed [`BlockFailed`] after
//! exactly `max_attempts` attempts, never an escaped panic or a partial
//! result, and drop accounting must stay exact through both paths.

use std::panic::{self, catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use bds_pool::Pool;
use bds_seq::prelude::*;
use bds_seq::{recovery_counts, run_recovered, Policy, RetryPolicy};

/// Geometry overrides and the fault state are process-global;
/// serialize the tests.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Silence the default panic hook while injected faults fly; restores
/// the previous hook on drop.
type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Send + Sync>;

struct Quiet(Option<PanicHook>);

impl Quiet {
    fn install() -> Quiet {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        Quiet(Some(prev))
    }
}

impl Drop for Quiet {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            panic::set_hook(prev);
        }
    }
}

const N: usize = 4096;
/// The element whose block carries the injected fault.
const TARGET: usize = 1234;

/// How many more times streaming `TARGET` panics before the fault
/// heals: `1` = transient (fails attempt 1, succeeds attempt 2),
/// `u64::MAX` = deterministic (exhausts any retry budget).
static FIRES_LEFT: AtomicU64 = AtomicU64::new(0);
/// How many times `TARGET` was streamed — 2 proves exactly one block
/// retry and zero whole-pipeline re-executions.
static TARGET_CALLS: AtomicU64 = AtomicU64::new(0);

fn arm(fails: u64) {
    FIRES_LEFT.store(fails, Ordering::SeqCst);
    TARGET_CALLS.store(0, Ordering::SeqCst);
}

fn elem(i: usize) -> u64 {
    if i == TARGET {
        TARGET_CALLS.fetch_add(1, Ordering::SeqCst);
        let fired = FIRES_LEFT
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| left.checked_sub(1))
            .is_ok();
        if fired {
            panic!("injected block fault at element {i}");
        }
    }
    i as u64 * 3 + 1
}

fn oracle() -> Vec<u64> {
    (0..N).map(|i| i as u64 * 3 + 1).collect()
}

fn run_mono() -> Vec<u64> {
    tabulate(N, elem).to_vec()
}

fn run_erased() -> Vec<u64> {
    bds_seq::BoxSeq::new(tabulate(N, elem)).to_vec()
}

fn run_dynseq() -> Vec<u64> {
    bds_seq::dynseq::DSeq::tabulate(N, elem).to_vec()
}

type Lowering = fn() -> Vec<u64>;

const LOWERINGS: [(&str, Lowering); 3] = [
    ("mono", run_mono),
    ("erased", run_erased),
    ("dynseq", run_dynseq),
];

#[test]
fn transient_fault_recovers_bit_identical_across_lowerings_and_geometries() {
    let _l = lock();
    let _q = Quiet::install();
    let want = oracle();
    let pool = Pool::new_seeded(4, 0xB10C_F417);
    let geoms = [
        ("adaptive", Policy::Adaptive),
        ("fixed1", Policy::Fixed(1)),
        ("fixed8", Policy::Fixed(8)),
        ("fixed32", Policy::Fixed(32)),
    ];
    for (gname, geom) in geoms {
        let _g = bds_seq::set_policy(geom);
        for (lname, f) in LOWERINGS {
            arm(1);
            let before = recovery_counts();
            let got = pool.install(|| run_recovered(RetryPolicy::default(), f));
            let d = recovery_counts().saturating_sub(&before);
            assert_eq!(
                got.as_ref().ok(),
                Some(&want),
                "{lname}/{gname}: recovered result must be bit-identical to the oracle"
            );
            assert_eq!(d.block_retries, 1, "{lname}/{gname}: exactly one block retry");
            assert_eq!(d.quarantines, 0, "{lname}/{gname}: nothing quarantined");
            assert_eq!(d.recovered_jobs, 1, "{lname}/{gname}: the run counts as recovered");
            assert_eq!(
                TARGET_CALLS.load(Ordering::SeqCst),
                2,
                "{lname}/{gname}: the faulted element streams exactly twice \
                 (attempt 1 + the block retry) — no whole-pipeline re-execution"
            );
        }
    }
}

#[test]
fn deterministic_fault_surfaces_typed_error_after_max_attempts() {
    let _l = lock();
    let _q = Quiet::install();
    let _g = bds_seq::force_block_size(64);
    let pool = Pool::new_seeded(4, 0xB10C_F418);
    arm(u64::MAX);
    let before = recovery_counts();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| run_recovered(RetryPolicy::default().with_max_attempts(3), run_mono))
    }));
    let d = recovery_counts().saturating_sub(&before);
    let r = outcome.expect("quarantine must surface as a typed error, not an escaped panic");
    let failed = r.expect_err("a deterministic fault must not yield a (partial) result");
    assert_eq!(failed.ordinal, TARGET / 64, "quarantine names the faulted block");
    assert_eq!(failed.attempts, 3, "exactly max_attempts attempts");
    assert_eq!(TARGET_CALLS.load(Ordering::SeqCst), 3, "the block ran exactly 3 times");
    assert_eq!(d.quarantines, 1);
    assert_eq!(d.block_retries, 2, "attempts 2 and 3 are the retries");
    assert_eq!(d.recovered_jobs, 0);

    // The pool survives quarantine: the same pipeline, healed, runs clean.
    arm(0);
    let clean = pool.install(|| run_recovered(RetryPolicy::default(), run_mono));
    assert_eq!(clean, Ok(oracle()));
}

// ---------------------------------------------------------------------
// Exact drop accounting through retry and quarantine (the live-bytes
// leak check): retried blocks discard their partial prefix on unwind
// and re-write from scratch; quarantined runs drop exactly the
// elements the surviving blocks wrote.
// ---------------------------------------------------------------------

static LIVE: AtomicI64 = AtomicI64::new(0);
static UNDERFLOW: AtomicBool = AtomicBool::new(false);

#[derive(Debug, PartialEq)]
struct Tok(u64);

impl Tok {
    fn new(v: u64) -> Tok {
        LIVE.fetch_add(1, Ordering::SeqCst);
        Tok(v)
    }
}

impl Clone for Tok {
    fn clone(&self) -> Tok {
        Tok::new(self.0)
    }
}

impl Drop for Tok {
    fn drop(&mut self) {
        if LIVE.fetch_sub(1, Ordering::SeqCst) <= 0 {
            UNDERFLOW.store(true, Ordering::SeqCst);
        }
    }
}

fn assert_exact_drops(label: &str) {
    assert_eq!(LIVE.load(Ordering::SeqCst), 0, "{label}: leaked elements");
    assert!(!UNDERFLOW.load(Ordering::SeqCst), "{label}: double drop");
}

fn reset_drop_counters() {
    LIVE.store(0, Ordering::SeqCst);
    UNDERFLOW.store(false, Ordering::SeqCst);
}

fn run_mono_tok() -> Vec<Tok> {
    tabulate(N, |i| {
        elem(i);
        Tok::new(i as u64)
    })
    .to_vec()
}

#[test]
fn retried_blocks_keep_drop_accounting_exact() {
    let _l = lock();
    let _q = Quiet::install();
    let _g = bds_seq::force_block_size(64);
    let pool = Pool::new_seeded(4, 0xB10C_F419);

    // Transient: the faulted attempt's partial writes are discarded on
    // unwind, the retry re-writes the full block, and the completed
    // result drops every element exactly once.
    reset_drop_counters();
    arm(1);
    let got = pool.install(|| run_recovered(RetryPolicy::default(), run_mono_tok));
    let v = got.expect("transient fault must recover");
    assert_eq!(v.len(), N);
    drop(v);
    assert_exact_drops("retry/transient");

    // Deterministic: quarantine abandons the buffer; everything the
    // surviving blocks wrote still drops exactly once.
    reset_drop_counters();
    arm(u64::MAX);
    let got = pool.install(|| run_recovered(RetryPolicy::default(), run_mono_tok));
    assert!(got.is_err(), "deterministic fault must quarantine");
    assert_exact_drops("retry/quarantine");
}

// ---------------------------------------------------------------------
// The legality boundary: side-effecting consumers are not retried
// unless explicitly opted in (see the DESIGN.md legality table).
// ---------------------------------------------------------------------

#[test]
fn for_each_is_not_retried_by_default() {
    let _l = lock();
    let _q = Quiet::install();
    let _g = bds_seq::force_block_size(64);
    let pool = Pool::new_seeded(2, 0xB10C_F41A);

    arm(1);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            run_recovered(RetryPolicy::default(), || {
                tabulate(N, elem).for_each(|x| {
                    std::hint::black_box(x);
                })
            })
        })
    }));
    assert!(
        outcome.is_err(),
        "a fault in a side-effecting consumer must propagate, not retry"
    );
    assert_eq!(TARGET_CALLS.load(Ordering::SeqCst), 1, "no second attempt");
}

#[test]
fn for_each_retries_when_opted_in_with_idempotent_effects() {
    let _l = lock();
    let _q = Quiet::install();
    let _g = bds_seq::force_block_size(64);
    let pool = Pool::new_seeded(2, 0xB10C_F41B);

    arm(1);
    let seen: Vec<AtomicBool> = (0..N).map(|_| AtomicBool::new(false)).collect();
    let before = recovery_counts();
    let got = pool.install(|| {
        run_recovered(RetryPolicy::default().with_retry_side_effects(true), || {
            tabulate(N, elem).for_each(|x| {
                // Idempotent effect: marking an index is safe to replay.
                seen[((x - 1) / 3) as usize].store(true, Ordering::Relaxed);
            })
        })
    });
    let d = recovery_counts().saturating_sub(&before);
    assert_eq!(got, Ok(()));
    assert_eq!(d.block_retries, 1);
    assert!(seen.iter().all(|b| b.load(Ordering::Relaxed)), "every index visited");
}
