//! Cooperative cross-block cancellation.
//!
//! A [`CancelToken`] is a shared flag observed by the loop primitives
//! ([`apply`](crate::apply), [`parallel_for`](crate::parallel_for),
//! [`parallel_for_grain`](crate::parallel_for_grain)) at **block
//! granularity**: once the token is cancelled, sibling chunks that have
//! not started yet are skipped (and counted), while chunks already
//! running finish normally. Nothing is interrupted mid-element.
//!
//! Tokens propagate *structurally*, not by thread identity: a loop
//! primitive reads the ambient token once on the thread that enters it,
//! carries the token through its own fork-join recursion, and
//! re-installs it around each leaf chunk so that nested loop primitives
//! called from inside `f(i)` — possibly on a stolen worker thread —
//! inherit it.
//!
//! [`apply_cancellable`] builds the failure protocol on top: the first
//! block that returns `Err` or panics flips the token, remaining blocks
//! are skipped at their next block boundary, and the failure is
//! reported at the join point — a real panic payload wins over an
//! `Err`, and among `Err`s the one from the lowest block index is kept.
//!
//! Secondary aborts use the [`Cancelled`] sentinel payload: work that
//! notices cancellation mid-way and cannot produce a meaningful result
//! (e.g. a partially materialized buffer) panics with `Cancelled` to
//! abandon the region. `apply_cancellable` filters these in favor of
//! the recorded primary failure.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct CancelState {
    cancelled: AtomicBool,
    /// Leaf chunks skipped because this token (or an ancestor) was
    /// cancelled. Ancestors are incremented too, so an outer token
    /// observes skips that happened inside nested regions.
    skipped: AtomicU64,
    parent: Option<Arc<CancelState>>,
    /// The governed run this token belongs to, if any (see
    /// [`crate::govern`]). Children inherit it, so memory charges made
    /// on stolen workers reach the right budget with no extra plumbing.
    govern: Option<Arc<crate::govern::GovernCtx>>,
    /// The recovering run this token belongs to, if any (see
    /// [`crate::recovery`]). Children inherit it, so block bodies on
    /// stolen workers find their retry policy the same way they find
    /// their budget.
    retry: Option<Arc<crate::recovery::RetryCtx>>,
}

impl CancelState {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let mut cur = self.parent.as_deref();
        while let Some(state) = cur {
            if state.cancelled.load(Ordering::Acquire) {
                return true;
            }
            cur = state.parent.as_deref();
        }
        false
    }
}

/// A shared cancellation flag observed by the loop primitives at block
/// granularity. Cheap to clone (one `Arc`).
#[derive(Debug, Clone)]
pub struct CancelToken {
    state: Arc<CancelState>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no parent.
    pub fn new() -> CancelToken {
        CancelToken {
            state: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                skipped: AtomicU64::new(0),
                parent: None,
                govern: None,
                retry: None,
            }),
        }
    }

    /// A child token: cancelled when either it or `self` is cancelled.
    /// Cancelling the child does *not* cancel `self` — failures inside
    /// a nested region stay contained in it. The child inherits the
    /// parent's governed and recovering runs (if any), so nested
    /// regions keep charging the same budget and retrying under the
    /// same policy.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            state: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                skipped: AtomicU64::new(0),
                parent: Some(Arc::clone(&self.state)),
                govern: self.state.govern.clone(),
                retry: self.state.retry.clone(),
            }),
        }
    }

    /// A fresh parentless token bound to a governed run.
    pub(crate) fn new_governed(ctx: Arc<crate::govern::GovernCtx>) -> CancelToken {
        CancelToken {
            state: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                skipped: AtomicU64::new(0),
                parent: None,
                govern: Some(ctx),
                retry: None,
            }),
        }
    }

    /// A child of `self` bound to a *new* governed run: inner budgets
    /// shadow outer ones, while cancellation still flows downward from
    /// the parent. The recovering run (if any) is inherited unchanged,
    /// so `run_recovered(run_governed(..))` and the reverse nesting
    /// both see one retry policy and one budget.
    pub(crate) fn child_governed(&self, ctx: Arc<crate::govern::GovernCtx>) -> CancelToken {
        CancelToken {
            state: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                skipped: AtomicU64::new(0),
                parent: Some(Arc::clone(&self.state)),
                govern: Some(ctx),
                retry: self.state.retry.clone(),
            }),
        }
    }

    /// A fresh parentless token bound to a recovering run.
    pub(crate) fn new_retrying(ctx: Arc<crate::recovery::RetryCtx>) -> CancelToken {
        CancelToken {
            state: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                skipped: AtomicU64::new(0),
                parent: None,
                govern: None,
                retry: Some(ctx),
            }),
        }
    }

    /// A child of `self` bound to a *new* recovering run: an inner
    /// retry policy shadows an outer one, while cancellation still
    /// flows downward and the governed run (if any) is inherited.
    pub(crate) fn child_retrying(&self, ctx: Arc<crate::recovery::RetryCtx>) -> CancelToken {
        CancelToken {
            state: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                skipped: AtomicU64::new(0),
                parent: Some(Arc::clone(&self.state)),
                govern: self.state.govern.clone(),
                retry: Some(ctx),
            }),
        }
    }

    /// The governed run this token (via inheritance) belongs to.
    pub(crate) fn govern_ctx(&self) -> Option<Arc<crate::govern::GovernCtx>> {
        self.state.govern.clone()
    }

    /// The recovering run this token (via inheritance) belongs to.
    pub(crate) fn retry_ctx(&self) -> Option<Arc<crate::recovery::RetryCtx>> {
        self.state.retry.clone()
    }

    /// Request cancellation. Sibling blocks stop at their next block
    /// boundary; blocks already running are not interrupted.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Release);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called on this
    /// token or any ancestor.
    pub fn is_cancelled(&self) -> bool {
        self.state.is_cancelled()
    }

    /// Number of leaf chunks the loop primitives skipped on behalf of
    /// this token, including skips inside nested child regions.
    pub fn skipped_blocks(&self) -> u64 {
        self.state.skipped.load(Ordering::Relaxed)
    }

    pub(crate) fn note_skipped(&self, chunks: u64) {
        self.state.skipped.fetch_add(chunks, Ordering::Relaxed);
        let mut cur = self.state.parent.as_deref();
        while let Some(state) = cur {
            state.skipped.fetch_add(chunks, Ordering::Relaxed);
            cur = state.parent.as_deref();
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// The token governing work started from the current thread, if any.
pub fn current_token() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True if the ambient token (if any) has been cancelled. The hook used
/// by consumers that must abandon partial work at a safe point.
pub fn cancellation_requested() -> bool {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(|t| t.is_cancelled())
            .unwrap_or(false)
    })
}

/// Restores the previously installed token on drop.
pub(crate) struct TokenGuard {
    prev: Option<CancelToken>,
}

impl Drop for TokenGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

pub(crate) fn install(token: Option<CancelToken>) -> TokenGuard {
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), token));
    TokenGuard { prev }
}

/// Run `f` with `token` as the ambient cancellation token; the loop
/// primitives called (transitively) by `f` observe it at block
/// boundaries. The previous ambient token is restored afterwards.
pub fn with_token<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    let _guard = install(Some(token.clone()));
    f()
}

/// Run `f` with **no** ambient cancellation token, restoring the
/// previous one afterwards.
///
/// Inside a shield the loop primitives never skip blocks, so code whose
/// soundness depends on every iteration running (e.g. builders that
/// `set_len` over a buffer they assume fully written) stays correct
/// even when called from a cancelled region. The shielded work runs to
/// completion; cancellation takes effect again once the shield exits.
pub fn shield<R>(f: impl FnOnce() -> R) -> R {
    let _guard = install(None);
    f()
}

/// Sentinel panic payload for secondary aborts: work that observes
/// cancellation and has no meaningful result panics with `Cancelled`
/// to abandon the region. [`apply_cancellable`] filters these in favor
/// of the primary failure.
#[derive(Debug)]
pub struct Cancelled;

/// Abandon the current cancelled region by panicking with the
/// [`Cancelled`] sentinel.
///
/// Must only be called when cancellation has actually been requested
/// (see [`cancellation_requested`]): the sentinel is swallowed by the
/// enclosing [`apply_cancellable`] on the assumption that a primary
/// failure was recorded or an ancestor region is unwinding.
pub fn abort_region() -> ! {
    std::panic::panic_any(Cancelled)
}

/// Is this panic payload the [`Cancelled`] sentinel?
pub fn is_cancellation(payload: &(dyn Any + Send)) -> bool {
    payload.is::<Cancelled>()
}

/// Amortized per-element cancellation poll for long sequential loops.
///
/// The loop primitives only observe a [`CancelToken`] at block
/// boundaries, so a single huge block (a forced geometry, a `flatten`
/// region spanning many segments, a scan's sequential phase) could run
/// for an unbounded time after cancellation. Leaf element iterators
/// embed a `PollTicker` and call [`tick`](PollTicker::tick) once per
/// element: every [`INTERVAL`](PollTicker::INTERVAL) elements it checks
/// the ambient token and abandons the region via [`abort_region`] if
/// cancellation was requested — bounding cancellation latency by one
/// poll chunk regardless of block geometry.
///
/// The common path is a single decrement-and-branch; the thread-local
/// token read happens once per `INTERVAL` elements.
#[derive(Debug, Clone)]
pub struct PollTicker {
    left: u32,
}

/// Cancellation polls performed by every [`PollTicker`] in the process
/// since the last [`reset_ticker_polls`]. One relaxed increment per
/// [`PollTicker::INTERVAL`] elements — cheap enough to keep on
/// unconditionally, and deterministic for a fixed block geometry (each
/// block iterator owns a fresh ticker, so the count is a pure function
/// of the block lengths, independent of scheduling). The parity tests
/// use it to assert that different instantiations of the stream core
/// poll identically.
static TICKER_POLLS: AtomicU64 = AtomicU64::new(0);

/// Total ambient-token polls by all `PollTicker`s since the last
/// [`reset_ticker_polls`].
pub fn ticker_polls() -> u64 {
    TICKER_POLLS.load(Ordering::Relaxed)
}

/// Reset the process-wide [`ticker_polls`] counter to zero.
pub fn reset_ticker_polls() {
    TICKER_POLLS.store(0, Ordering::Relaxed);
}

impl PollTicker {
    /// Elements between ambient-token polls.
    pub const INTERVAL: u32 = 1024;

    /// A fresh ticker, due to poll after [`INTERVAL`](Self::INTERVAL)
    /// elements.
    pub const fn new() -> PollTicker {
        PollTicker {
            left: Self::INTERVAL,
        }
    }

    /// Count one element; on every `INTERVAL`-th call, poll the ambient
    /// token and abandon the region (sentinel panic) if cancellation
    /// was requested.
    #[inline]
    pub fn tick(&mut self) {
        self.left -= 1;
        if self.left == 0 {
            self.left = Self::INTERVAL;
            TICKER_POLLS.fetch_add(1, Ordering::Relaxed);
            if cancellation_requested() {
                abort_region();
            }
        }
    }

    /// Count `n` elements at once — the bulk counterpart of
    /// [`tick`](Self::tick) for kernels that process a whole chunk of
    /// elements between polls (the SIMD fast paths in `bds-seq`).
    ///
    /// Equivalent to `n` calls to `tick` except that crossing several
    /// poll boundaries in one bulk step polls the ambient token once,
    /// not once per boundary: what `tick` guarantees — and what this
    /// preserves — is the *latency* bound (at most `INTERVAL` elements
    /// of work after cancellation before the region is abandoned),
    /// provided callers keep `n` at or below
    /// [`INTERVAL`](Self::INTERVAL).
    #[inline]
    pub fn tick_n(&mut self, n: usize) {
        let left = u64::from(self.left);
        let n = n as u64;
        if n < left {
            self.left -= n as u32;
            return;
        }
        let past = (n - left) % u64::from(Self::INTERVAL);
        self.left = Self::INTERVAL - past as u32;
        TICKER_POLLS.fetch_add(1, Ordering::Relaxed);
        if cancellation_requested() {
            abort_region();
        }
    }
}

impl Default for PollTicker {
    fn default() -> Self {
        PollTicker::new()
    }
}

/// First failure observed across the blocks of one `apply_cancellable`.
struct FailureCell<E> {
    /// Lowest-block-index `Err` so far.
    err: Mutex<Option<(usize, E)>>,
    /// Lowest-block-index real (non-sentinel) panic so far.
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
}

impl<E> FailureCell<E> {
    fn new() -> Self {
        FailureCell {
            err: Mutex::new(None),
            panic: Mutex::new(None),
        }
    }

    fn record_err(&self, block: usize, e: E) {
        let mut slot = self.err.lock().unwrap_or_else(|p| p.into_inner());
        match &*slot {
            Some((prev, _)) if *prev <= block => {}
            _ => *slot = Some((block, e)),
        }
    }

    fn record_panic(&self, block: usize, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|p| p.into_inner());
        match &*slot {
            Some((prev, _)) if *prev <= block => {}
            _ => *slot = Some((block, payload)),
        }
    }
}

/// Run `f(i)` for every `0 <= i < n` like [`apply`](crate::apply), with
/// the failure protocol of the crate: the first block that returns
/// `Err` or panics cancels the region, sibling blocks stop at their
/// next block boundary, and the failure is reported here at the join
/// point.
///
/// * A real panic in any block wins: it is resumed by this call (the
///   one from the lowest block index, if several raced).
/// * Otherwise the `Err` from the lowest failing block index is
///   returned — deterministic even though later blocks may also have
///   failed concurrently.
/// * [`Cancelled`] sentinel panics from nested work are filtered.
/// * If an *enclosing* region was cancelled while this one ran (and no
///   local failure occurred), the sentinel is re-raised so the
///   enclosing `apply_cancellable` handles it.
///
/// The region uses a child of the ambient token, so failures here do
/// not cancel the enclosing region, while an enclosing cancellation
/// stops this region at its next block boundary.
pub fn apply_cancellable<E, F>(n: usize, f: F) -> Result<(), E>
where
    F: Fn(usize) -> Result<(), E> + Sync,
    E: Send,
{
    let token = match current_token() {
        Some(parent) => parent.child(),
        None => CancelToken::new(),
    };
    let failures = FailureCell::new();

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        with_token(&token, || {
            crate::apply(n, |i| {
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        token.cancel();
                        failures.record_err(i, e);
                    }
                    Err(payload) => {
                        token.cancel();
                        if !is_cancellation(&*payload) {
                            failures.record_panic(i, payload);
                        }
                    }
                }
            })
        })
    }));
    if let Err(payload) = outcome {
        // Not from `f` (every block is caught above): the pool itself
        // unwound. Propagate as-is.
        resume_unwind(payload);
    }

    let panicked = {
        let mut slot = failures.panic.lock().unwrap_or_else(|p| p.into_inner());
        slot.take()
    };
    if let Some((_, payload)) = panicked {
        resume_unwind(payload);
    }
    let erred = {
        let mut slot = failures.err.lock().unwrap_or_else(|p| p.into_inner());
        slot.take()
    };
    if let Some((_, e)) = erred {
        return Err(e);
    }
    if token.is_cancelled() {
        // No local failure, yet cancelled: the enclosing region was
        // cancelled while we ran. Abandon upwards.
        abort_region();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn err_short_circuits_and_skips_siblings() {
        let pool = Pool::new(4);
        let ran = AtomicUsize::new(0);
        let token = CancelToken::new();
        let r: Result<(), &str> = pool.install(|| {
            with_token(&token, || {
                apply_cancellable(1000, |i| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 3 {
                        Err("block 3 failed")
                    } else {
                        Ok(())
                    }
                })
            })
        });
        assert_eq!(r, Err("block 3 failed"));
        assert!(
            token.skipped_blocks() > 0,
            "expected skipped sibling blocks, ran {} of 1000",
            ran.load(Ordering::Relaxed)
        );
        assert!(ran.load(Ordering::Relaxed) < 1000);
    }

    #[test]
    fn lowest_block_index_error_wins() {
        let pool = Pool::new(4);
        for _ in 0..20 {
            // All four blocks rendezvous, so both failures (blocks 1
            // and 3) are recorded concurrently; the reported error must
            // deterministically be the lower block index.
            let barrier = std::sync::Barrier::new(4);
            let r: Result<(), usize> = pool.install(|| {
                apply_cancellable(4, |i| {
                    barrier.wait();
                    if i % 2 == 1 {
                        Err(i)
                    } else {
                        Ok(())
                    }
                })
            });
            assert_eq!(r, Err(1));
        }
    }

    #[test]
    fn reported_error_is_a_real_failure_under_races() {
        let pool = Pool::new(4);
        for _ in 0..20 {
            let r: Result<(), usize> = pool.install(|| {
                apply_cancellable(64, |i| if i % 2 == 1 { Err(i) } else { Ok(()) })
            });
            // Which odd block loses the race varies; that a failing
            // block is reported does not.
            let i = r.expect_err("some block must fail");
            assert_eq!(i % 2, 1);
        }
    }

    #[test]
    fn panic_wins_over_err() {
        let pool = Pool::new(2);
        // Both blocks must actually start (cancellation only skips
        // blocks that have not begun), so rendezvous before failing:
        // block 0 returns Err while block 1 panics.
        let barrier = std::sync::Barrier::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                apply_cancellable::<&str, _>(2, |i| {
                    barrier.wait();
                    if i == 1 {
                        panic!("block 1 exploded");
                    }
                    Err("block 0 erred")
                })
            })
        }));
        let payload = caught.expect_err("panic must propagate over Err");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "block 1 exploded");
        assert_eq!(pool.install(|| 5), 5, "pool must survive");
    }

    #[test]
    fn success_path_reports_no_skips() {
        let pool = Pool::new(4);
        let token = CancelToken::new();
        let r: Result<(), ()> =
            pool.install(|| with_token(&token, || apply_cancellable(500, |_| Ok(()))));
        assert_eq!(r, Ok(()));
        assert_eq!(token.skipped_blocks(), 0);
    }

    #[test]
    fn plain_apply_observes_ambient_cancellation() {
        let pool = Pool::new(4);
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        pool.install(|| {
            with_token(&token, || {
                crate::apply(100, |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                })
            })
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        assert_eq!(token.skipped_blocks(), 100);
    }

    #[test]
    fn shield_suppresses_ambient_cancellation() {
        let pool = Pool::new(4);
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        pool.install(|| {
            with_token(&token, || {
                shield(|| {
                    crate::apply(100, |_| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    })
                })
            })
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(token.skipped_blocks(), 0);
    }

    #[test]
    fn tick_n_matches_tick_budget() {
        // With no ambient token, tick_n is pure bookkeeping; its
        // remaining budget must agree with n single ticks at every
        // chunk size, including exact multiples of the interval.
        for chunk in [1usize, 7, 64, 1023, 1024, 1025, 4096] {
            let mut bulk = PollTicker::new();
            let mut single = PollTicker::new();
            for _ in 0..3 {
                bulk.tick_n(chunk);
                for _ in 0..chunk {
                    single.tick();
                }
                assert_eq!(bulk.left, single.left, "chunk {chunk}");
            }
        }
    }

    #[test]
    fn tick_n_aborts_within_one_interval_of_cancellation() {
        let token = CancelToken::new();
        token.cancel();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_token(&token, || {
                let mut t = PollTicker::new();
                // Chunked ticking must poll at the same ~INTERVAL
                // granularity as per-element ticking: two 512-element
                // chunks cross the first boundary.
                t.tick_n(512);
                t.tick_n(512);
                unreachable!("poll at the interval boundary must abort");
            })
        }));
        let payload = caught.expect_err("cancelled region must abort");
        assert!(is_cancellation(&*payload));
    }

    #[test]
    fn child_cancellation_stays_contained() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
        let grandchild = child.child();
        assert!(grandchild.is_cancelled());
    }

    #[test]
    fn nested_cancellable_regions_contain_failures() {
        let pool = Pool::new(4);
        // Inner failures must not cancel the outer region: every outer
        // block completes even though each inner region fails.
        let outer_done = AtomicUsize::new(0);
        let r: Result<(), &str> = pool.install(|| {
            apply_cancellable(8, |_| {
                let inner: Result<(), &str> =
                    apply_cancellable(8, |j| if j == 0 { Err("inner") } else { Ok(()) });
                assert_eq!(inner, Err("inner"));
                outer_done.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
        });
        assert_eq!(r, Ok(()));
        assert_eq!(outer_done.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn outer_cancellation_aborts_inner_region() {
        let pool = Pool::new(2);
        let token = CancelToken::new();
        token.cancel();
        // The inner region sees only pre-cancelled ambient state: it
        // runs nothing and abandons upwards with the sentinel.
        let caught = pool.install(|| {
            catch_unwind(AssertUnwindSafe(|| {
                with_token(&token, || {
                    apply_cancellable::<(), _>(16, |_| Ok(()))
                })
            }))
        });
        let payload = caught.expect_err("must abandon via sentinel");
        assert!(is_cancellation(&*payload));
    }
}
