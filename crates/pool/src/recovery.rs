//! Block-granular fault recovery: transient-fault retry and
//! poisoned-block quarantine.
//!
//! The block-delayed representation makes every materialization a set
//! of independently computed, disjoint block writes — which means a
//! failed block is re-executable in isolation. [`run_recovered`]
//! installs a [`RetryPolicy`] on the ambient cancellation token, and
//! the stream core's drive loops wrap each block body in
//! [`recover_block`]: a panicking block is classified
//! ([`FaultClass::Transient`] faults are re-executed into the block's
//! already-reserved disjoint output region; [`FaultClass::Deterministic`]
//! ones — or transient ones that keep failing past
//! [`RetryPolicy::max_attempts`] — are **quarantined**), and the run
//! surfaces exactly one typed [`BlockFailed`] instead of an escaped
//! panic or a partial result.
//!
//! Recovery composes with the rest of the failure machinery rather than
//! replacing it:
//!
//! * **Budgets** ([`run_governed`](crate::run_governed)): each attempt
//!   re-charges its allocations, so a retry storm trips
//!   `Exceeded::Memory` honestly; block writers discard (never record)
//!   their partial segment on unwind, so nothing is double-reclaimed.
//! * **Cancellation**: retried blocks poll the ambient token between
//!   attempts and abandon the region instead of retrying into a
//!   cancelled run; the [`Cancelled`](crate::cancel::Cancelled)
//!   sentinel is never treated as a fault.
//! * **Worker crash/respawn**: an injected crash fires between jobs, so
//!   a block whose attempt is in flight simply completes on a surviving
//!   or respawned worker — tier 2 of the recovery ladder (see
//!   `docs/ARCHITECTURE.md`) is independent of tier 1.
//! * **Side effects**: `for_each`-style consumers are *not* retryable
//!   by default (re-running an effectful block would double-apply its
//!   effects); [`recover_effect_block`] only retries when
//!   [`RetryPolicy::retry_side_effects`] is explicitly set.
//!
//! Geometry is pinned before the drive loop fans out, so a retried
//! block re-executes with the same block size and bounds — results are
//! bit-identical to an unfaulted run.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::cancel::{self, CancelToken};
use crate::govern::backoff_delay;

/// Classification of a block-level fault by a [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Worth re-executing: injected worker crashes, `Interrupted`-style
    /// faults, anything timing- or scheduling-dependent. A transient
    /// fault that keeps firing is reclassified empirically once
    /// [`RetryPolicy::max_attempts`] identical failures have occurred
    /// at the same block ordinal.
    Transient,
    /// Re-execution is known to fail identically (e.g. an assertion on
    /// the block's own input data): quarantine immediately, spending no
    /// further attempts.
    Deterministic,
}

/// Default [`RetryPolicy::classify`]: every non-sentinel panic is
/// assumed transient; determinism is established empirically by
/// exhausting `max_attempts` at one block ordinal.
pub fn default_classify(_payload: &(dyn Any + Send)) -> FaultClass {
    FaultClass::Transient
}

/// How [`run_recovered`] treats a panicking block.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total executions a block may consume (first run + retries) before
    /// it is quarantined. `1` means quarantine on first failure (typed
    /// [`BlockFailed`], no re-execution); `0` is treated as `1`.
    pub max_attempts: usize,
    /// Base of the jittered exponential backoff slept between attempts
    /// (see [`backoff_delay`]); [`Duration::ZERO`] retries immediately,
    /// which is what deterministic replay (`BDS_CHECK_SEED`) wants.
    pub backoff: Duration,
    /// Classifies a block's panic payload. Returning
    /// [`FaultClass::Deterministic`] quarantines without further
    /// attempts; the default classifier treats everything as transient.
    pub classify: fn(&(dyn Any + Send)) -> FaultClass,
    /// Allow [`recover_effect_block`] (the `for_each` family) to retry.
    /// Off by default: re-running a side-effecting block double-applies
    /// its effects, which is only sound when the caller knows the
    /// effects are idempotent. See the legality table in `DESIGN.md`.
    pub retry_side_effects: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
            classify: default_classify,
            retry_side_effects: false,
        }
    }
}

impl RetryPolicy {
    /// Set [`RetryPolicy::max_attempts`].
    pub fn with_max_attempts(mut self, n: usize) -> RetryPolicy {
        self.max_attempts = n;
        self
    }

    /// Set [`RetryPolicy::backoff`].
    pub fn with_backoff(mut self, base: Duration) -> RetryPolicy {
        self.backoff = base;
        self
    }

    /// Set [`RetryPolicy::classify`].
    pub fn with_classify(mut self, f: fn(&(dyn Any + Send)) -> FaultClass) -> RetryPolicy {
        self.classify = f;
        self
    }

    /// Opt side-effecting consumers into retry (see
    /// [`RetryPolicy::retry_side_effects`]).
    pub fn with_retry_side_effects(mut self, yes: bool) -> RetryPolicy {
        self.retry_side_effects = yes;
        self
    }
}

/// Typed failure of one quarantined block: the pipeline's output for a
/// run in which some block kept failing. Exactly one is surfaced per
/// [`run_recovered`] (the lowest failing block ordinal, if several
/// raced), never an escaped panic, never a partial result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockFailed {
    /// Index of the quarantined block within its drive loop's geometry.
    pub ordinal: usize,
    /// Executions the block consumed before quarantine (equals the
    /// policy's `max_attempts` for empirically deterministic faults;
    /// fewer when the classifier said [`FaultClass::Deterministic`]).
    pub attempts: usize,
}

impl std::fmt::Display for BlockFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "block {} quarantined after {} attempt{}",
            self.ordinal,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" }
        )
    }
}

impl std::error::Error for BlockFailed {}

/// Process-wide recovery counters, exported next to the governance trip
/// counters in benchmark harnesses and [`PoolStats`](crate::PoolStats).
static BLOCK_RETRIES: AtomicU64 = AtomicU64::new(0);
static QUARANTINES: AtomicU64 = AtomicU64::new(0);
static RECOVERED_JOBS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide block-recovery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// Individual block re-executions after a transient fault.
    pub block_retries: u64,
    /// Blocks quarantined (deterministic classification or exhausted
    /// attempts); each corresponds to one surfaced [`BlockFailed`].
    pub quarantines: u64,
    /// [`run_recovered`] runs that completed successfully *after* at
    /// least one block retry — faults absorbed invisibly.
    pub recovered_jobs: u64,
}

impl RecoveryCounts {
    /// Per-field difference `self - baseline` (saturating), for
    /// measuring one region between two snapshots.
    pub fn saturating_sub(&self, other: &RecoveryCounts) -> RecoveryCounts {
        RecoveryCounts {
            block_retries: self.block_retries.saturating_sub(other.block_retries),
            quarantines: self.quarantines.saturating_sub(other.quarantines),
            recovered_jobs: self.recovered_jobs.saturating_sub(other.recovered_jobs),
        }
    }
}

/// Snapshot the process-wide recovery counters (cumulative since
/// process start).
pub fn recovery_counts() -> RecoveryCounts {
    RecoveryCounts {
        block_retries: BLOCK_RETRIES.load(Ordering::Relaxed),
        quarantines: QUARANTINES.load(Ordering::Relaxed),
        recovered_jobs: RECOVERED_JOBS.load(Ordering::Relaxed),
    }
}

/// Shared recovery state of one [`run_recovered`] region. Hangs off the
/// recovering token (and all its descendants), so block bodies on
/// stolen workers find their policy with no extra plumbing — the same
/// inheritance the governance context uses.
///
/// Public only for the `loom` model-checking facade; not a stable API.
#[derive(Debug)]
pub struct RetryCtx {
    policy: RetryPolicy,
    /// Lowest-ordinal quarantined block, if any: the one failure the
    /// enclosing [`run_recovered`] surfaces.
    failed: Mutex<Option<BlockFailed>>,
    /// Block re-executions inside this region.
    retried: AtomicU64,
}

impl RetryCtx {
    pub(crate) fn new(policy: RetryPolicy) -> RetryCtx {
        RetryCtx {
            policy,
            failed: Mutex::new(None),
            retried: AtomicU64::new(0),
        }
    }

    pub(crate) fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Record a quarantined block; among concurrent quarantines the
    /// lowest block ordinal wins, so the surfaced failure is
    /// deterministic even when several blocks raced to fail.
    pub(crate) fn record_failure(&self, failure: BlockFailed) {
        let mut slot = self.failed.lock().unwrap_or_else(|p| p.into_inner());
        match &*slot {
            Some(prev) if prev.ordinal <= failure.ordinal => {}
            _ => *slot = Some(failure),
        }
    }

    pub(crate) fn take_failure(&self) -> Option<BlockFailed> {
        self.failed.lock().unwrap_or_else(|p| p.into_inner()).take()
    }

    pub(crate) fn note_retried(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn retried(&self) -> u64 {
        self.retried.load(Ordering::Relaxed)
    }
}

/// The retry context of the ambient token, if the current thread is
/// inside a [`run_recovered`] region.
fn ambient_retry_ctx() -> Option<Arc<RetryCtx>> {
    cancel::current_token().and_then(|t| t.retry_ctx())
}

/// Run one block body under the ambient [`RetryPolicy`], if any.
///
/// The canonical per-block wrap used by the drive loops in
/// `bds_seq::stream` for **pure block writes** (materializations,
/// per-block folds): the block's output region is disjoint and its
/// writer discards partial content on unwind, so re-execution is
/// idempotent. Outside a [`run_recovered`] region (or with
/// `max_attempts <= 1` only in the sense that quarantine is immediate)
/// behavior is unchanged except that failures become quarantines.
///
/// Protocol per attempt:
/// * `body` returning normally (including `Err` values — those are
///   results, not faults) ends the loop.
/// * A [`Cancelled`](crate::cancel::Cancelled) sentinel is resumed
///   unchanged: cancellation is never retried against.
/// * Any other panic is classified; [`FaultClass::Deterministic`] or an
///   exhausted attempt budget quarantines the block (records the
///   [`BlockFailed`], cancels the region so siblings stop at their next
///   boundary, and abandons via the sentinel); otherwise the block is
///   re-executed after the policy's backoff.
pub fn recover_block<R>(ordinal: usize, body: impl Fn() -> R) -> R {
    match ambient_retry_ctx() {
        Some(ctx) => retry_loop(&ctx, ordinal, body),
        None => body(),
    }
}

/// [`recover_block`] for **side-effecting** block bodies (`for_each`
/// and friends): retries only when the policy explicitly opted in with
/// [`RetryPolicy::retry_side_effects`], because re-running an effectful
/// block double-applies its effects. With retry off (the default) the
/// body runs exactly once and failures propagate as they always did.
pub fn recover_effect_block<R>(ordinal: usize, body: impl Fn() -> R) -> R {
    match ambient_retry_ctx() {
        Some(ctx) if ctx.policy().retry_side_effects => retry_loop(&ctx, ordinal, body),
        _ => body(),
    }
}

fn retry_loop<R>(ctx: &RetryCtx, ordinal: usize, body: impl Fn() -> R) -> R {
    let max_attempts = ctx.policy().max_attempts.max(1);
    let mut attempt = 0usize;
    loop {
        attempt += 1;
        let payload = match catch_unwind(AssertUnwindSafe(&body)) {
            Ok(value) => return value,
            Err(payload) => payload,
        };
        if cancel::is_cancellation(&*payload) {
            // Cancellation (budget trip, sibling failure, enclosing
            // region) is not a block fault: abandon, never retry.
            resume_unwind(payload);
        }
        let class = (ctx.policy().classify)(&*payload);
        if class == FaultClass::Deterministic || attempt >= max_attempts {
            quarantine(ctx, BlockFailed { ordinal, attempts: attempt });
        }
        if cancel::cancellation_requested() {
            // The run was cancelled while this block was failing:
            // don't retry into a dead region.
            cancel::abort_region();
        }
        // Transient: re-execute this block only. The output region is
        // untouched (writers discard on unwind), geometry is pinned by
        // the caller, and budgets re-charge naturally on the next
        // attempt.
        BLOCK_RETRIES.fetch_add(1, Ordering::Relaxed);
        ctx.note_retried();
        if ctx.policy().backoff > Duration::ZERO {
            std::thread::sleep(backoff_delay(attempt - 1, ctx.policy().backoff));
        }
    }
}

/// Quarantine the block: record the typed failure, cancel the region so
/// sibling blocks stop at their next boundary, and abandon this block
/// via the sentinel (the enclosing [`run_recovered`] surfaces the
/// recorded [`BlockFailed`]).
fn quarantine(ctx: &RetryCtx, failure: BlockFailed) -> ! {
    ctx.record_failure(failure);
    QUARANTINES.fetch_add(1, Ordering::Relaxed);
    if let Some(token) = cancel::current_token() {
        token.cancel();
    }
    cancel::abort_region()
}

/// Run `f` with block-granular fault recovery under `policy`: a
/// recovering [`CancelToken`] is installed as the ambient token, and
/// every block the stream core's drive loops execute inside `f` is
/// wrapped in [`recover_block`] / [`recover_effect_block`].
///
/// * If every block completes (possibly after transient-fault retries),
///   `Ok(value)` — a run that absorbed at least one retry also bumps
///   the process-wide `recovered_jobs` counter.
/// * If some block was quarantined, exactly one typed
///   `Err(`[`BlockFailed`]`)` for the lowest failing ordinal; partial
///   buffers were reclaimed by their drop guards on the way out.
/// * Panics outside the drive loops (or with retry exhausted *and* no
///   context — impossible here) propagate unchanged, as does the
///   cancellation sentinel raised on behalf of an enclosing region.
///
/// Nesting: the token is a child of the ambient one, so an enclosing
/// cancellation or budget trip stops the recovered region, while a
/// quarantine here never cancels the enclosing region. Combine with
/// [`run_governed`](crate::run_governed) in either order; budgets are
/// charged once per attempt either way.
pub fn run_recovered<R>(policy: RetryPolicy, f: impl FnOnce() -> R) -> Result<R, BlockFailed> {
    run_recovered_counting(policy, f).0
}

/// [`run_recovered`], also returning how many block re-executions the
/// run performed — the hook multi-tenant front-ends use to account
/// retried blocks per tenant, distinct from breaker strikes.
pub fn run_recovered_counting<R>(
    policy: RetryPolicy,
    f: impl FnOnce() -> R,
) -> (Result<R, BlockFailed>, u64) {
    let ctx = Arc::new(RetryCtx::new(policy));
    let token = match cancel::current_token() {
        Some(parent) => parent.child_retrying(Arc::clone(&ctx)),
        None => CancelToken::new_retrying(Arc::clone(&ctx)),
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| cancel::with_token(&token, f)));
    let retried = ctx.retried();
    let result = match outcome {
        Ok(value) => match ctx.take_failure() {
            // A quarantine was recorded but a sibling protocol layer
            // (e.g. `apply_cancellable`'s lowest-block-index `Err`)
            // absorbed the sentinel: the quarantine still wins — the
            // value is partial.
            Some(failure) => Err(failure),
            None => {
                if retried > 0 {
                    RECOVERED_JOBS.fetch_add(1, Ordering::Relaxed);
                }
                Ok(value)
            }
        },
        Err(payload) => match ctx.take_failure() {
            // The quarantine's abandon-unwind (sentinel under
            // `apply_cancellable`, raw panic propagation under plain
            // `apply`) reached the join: surface the typed failure.
            Some(failure) => Err(failure),
            // Not ours: a real panic from `f`, or the sentinel raised
            // on behalf of an enclosing cancelled/governed region.
            None => resume_unwind(payload),
        },
    };
    (result, retried)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fault_free_run_passes_value_through() {
        let pool = Pool::new(2);
        let r = pool.install(|| run_recovered(RetryPolicy::default(), || 41 + 1));
        assert_eq!(r, Ok(42));
    }

    #[test]
    fn transient_block_fault_is_retried_once_and_recovered() {
        let pool = Pool::new(2);
        let before = recovery_counts();
        let failures_left = AtomicUsize::new(1);
        let runs = AtomicUsize::new(0);
        let r = pool.install(|| {
            run_recovered(RetryPolicy::default(), || {
                let total = AtomicUsize::new(0);
                crate::apply(8, |j| {
                    recover_block(j, || {
                        if j == 3 && failures_left.fetch_update(
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                            |n| n.checked_sub(1),
                        ).is_ok() {
                            panic!("transient fault at block 3");
                        }
                        runs.fetch_add(1, Ordering::SeqCst);
                        total.fetch_add(j, Ordering::SeqCst);
                    })
                });
                total.load(Ordering::SeqCst)
            })
        });
        assert_eq!(r, Ok((0..8).sum()));
        assert_eq!(runs.load(Ordering::SeqCst), 8, "every block ran to completion once");
        let d = recovery_counts().saturating_sub(&before);
        assert_eq!(d.block_retries, 1);
        assert_eq!(d.quarantines, 0);
        assert_eq!(d.recovered_jobs, 1);
    }

    #[test]
    fn deterministic_fault_quarantines_after_max_attempts() {
        let pool = Pool::new(2);
        let before = recovery_counts();
        let attempts = AtomicUsize::new(0);
        let r: Result<(), BlockFailed> = pool.install(|| {
            run_recovered(RetryPolicy::default().with_max_attempts(3), || {
                crate::apply(8, |j| {
                    recover_block(j, || {
                        if j == 5 {
                            attempts.fetch_add(1, Ordering::SeqCst);
                            panic!("always fails");
                        }
                    })
                });
            })
        });
        assert_eq!(r, Err(BlockFailed { ordinal: 5, attempts: 3 }));
        assert_eq!(attempts.load(Ordering::SeqCst), 3, "exactly max_attempts executions");
        let d = recovery_counts().saturating_sub(&before);
        assert_eq!(d.quarantines, 1);
        assert_eq!(d.block_retries, 2, "two re-executions before quarantine");
        assert_eq!(d.recovered_jobs, 0, "a quarantined run is not a recovery");
        // The pool survives; no panic escaped.
        assert_eq!(pool.install(|| 5), 5);
    }

    #[test]
    fn classifier_deterministic_skips_retries() {
        fn classify(_: &(dyn std::any::Any + Send)) -> FaultClass {
            FaultClass::Deterministic
        }
        let pool = Pool::new(2);
        let attempts = AtomicUsize::new(0);
        let r: Result<(), BlockFailed> = pool.install(|| {
            run_recovered(
                RetryPolicy::default().with_max_attempts(5).with_classify(classify),
                || {
                    crate::apply(4, |j| {
                        recover_block(j, || {
                            if j == 2 {
                                attempts.fetch_add(1, Ordering::SeqCst);
                                panic!("poison");
                            }
                        })
                    });
                },
            )
        });
        assert_eq!(r, Err(BlockFailed { ordinal: 2, attempts: 1 }));
        assert_eq!(attempts.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn effect_blocks_do_not_retry_by_default() {
        let pool = Pool::new(2);
        let attempts = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                run_recovered(RetryPolicy::default(), || {
                    crate::apply(4, |j| {
                        recover_effect_block(j, || {
                            if j == 1 {
                                attempts.fetch_add(1, Ordering::SeqCst);
                                panic!("effectful fault");
                            }
                        })
                    });
                })
            })
        }));
        // With side-effect retry off, the fault is not a block fault:
        // it propagates as a plain panic (exactly pre-recovery
        // behavior) after a single execution.
        assert!(caught.is_err(), "effect fault must propagate");
        assert_eq!(attempts.load(Ordering::SeqCst), 1);
        assert_eq!(pool.install(|| 5), 5);
    }

    #[test]
    fn effect_blocks_retry_when_opted_in() {
        let pool = Pool::new(2);
        let failures_left = AtomicUsize::new(1);
        let r = pool.install(|| {
            run_recovered(
                RetryPolicy::default().with_retry_side_effects(true),
                || {
                    let done = AtomicUsize::new(0);
                    crate::apply(4, |j| {
                        recover_effect_block(j, || {
                            if j == 1 && failures_left.fetch_update(
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                                |n| n.checked_sub(1),
                            ).is_ok() {
                                panic!("transient effect fault");
                            }
                            done.fetch_add(1, Ordering::SeqCst);
                        })
                    });
                    done.load(Ordering::SeqCst)
                },
            )
        });
        assert_eq!(r, Ok(4));
    }

    #[test]
    fn lowest_ordinal_quarantine_wins() {
        let pool = Pool::new(4);
        for _ in 0..10 {
            let barrier = std::sync::Barrier::new(4);
            let r: Result<(), BlockFailed> = pool.install(|| {
                run_recovered(RetryPolicy::default().with_max_attempts(1), || {
                    crate::apply(4, |j| {
                        recover_block(j, || {
                            barrier.wait();
                            if j % 2 == 1 {
                                panic!("fault");
                            }
                        })
                    });
                })
            });
            assert_eq!(r, Err(BlockFailed { ordinal: 1, attempts: 1 }));
        }
    }

    #[test]
    fn outside_run_recovered_blocks_propagate_panics() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                crate::apply(4, |j| {
                    recover_block(j, || {
                        if j == 2 {
                            panic!("no ambient policy");
                        }
                    })
                })
            })
        }));
        assert!(caught.is_err());
        assert_eq!(pool.install(|| 5), 5);
    }

    #[test]
    fn retry_composes_with_governed_budget() {
        use crate::{run_governed, Budget, Exceeded};
        let pool = Pool::new(2);
        // A retry storm must still trip the memory budget honestly:
        // each attempt charges, so the cumulative charge crosses the
        // limit and the run reports Exceeded::Memory, not a partial Ok.
        let r = pool.install(|| {
            run_recovered(RetryPolicy::default().with_max_attempts(8), || {
                run_governed(Budget::unlimited().with_mem_bytes(4096), || {
                    crate::apply(2, |j| {
                        recover_block(j, || {
                            if j == 1 {
                                crate::govern::charge_or_abort(1024);
                                panic!("transient, but each attempt charges 1 KiB");
                            }
                        })
                    });
                })
            })
        });
        match r {
            Ok(Err(Exceeded::Memory)) => {}
            other => panic!("expected a memory trip, got {other:?}"),
        }
    }

    #[test]
    fn block_failed_formats_attempts() {
        assert_eq!(
            BlockFailed { ordinal: 7, attempts: 3 }.to_string(),
            "block 7 quarantined after 3 attempts"
        );
        assert_eq!(
            BlockFailed { ordinal: 0, attempts: 1 }.to_string(),
            "block 0 quarantined after 1 attempt"
        );
    }
}
