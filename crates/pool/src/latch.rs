//! Completion latches.
//!
//! A latch starts unset and is set exactly once when a job finishes. Two
//! flavors: [`SpinLatch`] for waiters that keep themselves busy stealing
//! work (workers inside the pool), and [`LockLatch`] for external threads
//! that should block in the OS.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::{Condvar, Mutex};

/// Something a finished job can signal.
pub trait Latch {
    /// Signal completion. Must be the final touch of the latch's owner
    /// structure: the memory may be reclaimed immediately afterwards.
    fn set(&self);
}

/// A latch polled by busy workers.
pub struct SpinLatch {
    done: AtomicBool,
}

impl SpinLatch {
    /// A fresh, unset latch.
    pub fn new() -> Self {
        SpinLatch {
            done: AtomicBool::new(false),
        }
    }

    /// Has the latch been set? `Acquire` pairs with the `Release` in
    /// [`Latch::set`], making the job's result writes visible.
    pub fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Default for SpinLatch {
    fn default() -> Self {
        SpinLatch::new()
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// A latch an external (non-worker) thread can sleep on.
pub struct LockLatch {
    state: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    /// A fresh, unset latch.
    pub fn new() -> Self {
        LockLatch {
            state: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Block the calling thread until [`Latch::set`] has run. Returns
    /// immediately if the latch is already set.
    pub fn wait(&self) {
        let mut done = self.state.lock();
        while !*done {
            self.cond.wait(&mut done);
        }
    }
}

impl Default for LockLatch {
    fn default() -> Self {
        LockLatch::new()
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.state.lock();
        *done = true;
        // Notify while holding the lock so the waiter cannot observe
        // `done == false`, start waiting, and miss the signal.
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_latch_starts_unset() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
    }

    #[test]
    fn lock_latch_cross_thread() {
        let l = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            l2.set();
        });
        l.wait();
        h.join().unwrap();
    }

    #[test]
    fn lock_latch_set_before_wait() {
        let l = LockLatch::new();
        l.set();
        l.wait(); // must not block
    }
}
