//! Completion latches.
//!
//! A latch starts unset and is set exactly once when a job finishes.
//! Three flavors: [`SpinLatch`] for waiters that keep themselves busy
//! stealing work (workers inside the pool), [`LockLatch`] for external
//! threads that should block in the OS, and [`AsyncLatch`] for waiters
//! that are futures — it can park a [`Waker`] instead of an OS thread,
//! which is what lets `bds-service` hand out awaitable tickets without
//! one parked thread per outstanding request.

use std::sync::atomic::{AtomicBool, Ordering};
use std::task::{Poll, Waker};

use parking_lot::{Condvar, Mutex};

/// Something a finished job can signal.
pub trait Latch {
    /// Signal completion. Must be the final touch of the latch's owner
    /// structure: the memory may be reclaimed immediately afterwards.
    fn set(&self);
}

/// A latch polled by busy workers.
pub struct SpinLatch {
    done: AtomicBool,
}

impl SpinLatch {
    /// A fresh, unset latch.
    pub fn new() -> Self {
        SpinLatch {
            done: AtomicBool::new(false),
        }
    }

    /// Has the latch been set? `Acquire` pairs with the `Release` in
    /// [`Latch::set`], making the job's result writes visible.
    pub fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Default for SpinLatch {
    fn default() -> Self {
        SpinLatch::new()
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// A latch an external (non-worker) thread can sleep on.
pub struct LockLatch {
    state: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    /// A fresh, unset latch.
    pub fn new() -> Self {
        LockLatch {
            state: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Block the calling thread until [`Latch::set`] has run. Returns
    /// immediately if the latch is already set.
    pub fn wait(&self) {
        let mut done = self.state.lock();
        while !*done {
            self.cond.wait(&mut done);
        }
    }
}

impl Default for LockLatch {
    fn default() -> Self {
        LockLatch::new()
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.state.lock();
        *done = true;
        // Notify while holding the lock so the waiter cannot observe
        // `done == false`, start waiting, and miss the signal.
        self.cond.notify_all();
    }
}

/// A latch that both futures and OS threads can wait on.
///
/// `poll_set` registers the caller's [`Waker`] so an executor is woken
/// when the latch fires; `wait` blocks the calling thread like
/// `LockLatch`. Both styles may be mixed on one latch. Unlike the
/// other latches this one is expected to be shared (e.g. behind an
/// `Arc`) between the job that sets it and the waiters.
pub struct AsyncLatch {
    /// Fast-path flag. `Release` store in `set` pairs with the
    /// `Acquire` loads in `probe`/`wait`/`poll_set`, making the result
    /// writes that preceded `set` visible to waiters.
    done: AtomicBool,
    /// Wakers parked by `poll_set`, drained exactly once by `set`.
    /// The lock also serializes the set-vs-register race: `set` flips
    /// `done` while holding it, so a waiter that re-checks `done` under
    /// the lock and still sees `false` is guaranteed its waker will be
    /// observed (and woken) by `set`.
    waiters: Mutex<Vec<Waker>>,
    cond: Condvar,
}

impl AsyncLatch {
    /// A fresh, unset latch.
    pub fn new() -> Self {
        AsyncLatch {
            done: AtomicBool::new(false),
            waiters: Mutex::new(Vec::new()),
            cond: Condvar::new(),
        }
    }

    /// Has the latch been set?
    pub fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Block the calling OS thread until the latch is set. Returns
    /// immediately if it already is.
    pub fn wait(&self) {
        if self.probe() {
            return;
        }
        let mut waiters = self.waiters.lock();
        while !self.done.load(Ordering::Acquire) {
            self.cond.wait(&mut waiters);
        }
    }

    /// Future-style wait: `Ready` if the latch is set, otherwise parks
    /// `waker` (to be woken by [`Latch::set`]) and returns `Pending`.
    ///
    /// Safe to call repeatedly with different wakers (each poll parks
    /// the latest one, as the `Future` contract requires).
    pub fn poll_set(&self, waker: &Waker) -> Poll<()> {
        if self.probe() {
            return Poll::Ready(());
        }
        let mut waiters = self.waiters.lock();
        // Re-check under the lock: `set` flips `done` while holding it,
        // so either we see `true` here or our waker is registered
        // before `set` drains the list.
        if self.done.load(Ordering::Acquire) {
            return Poll::Ready(());
        }
        waiters.push(waker.clone());
        Poll::Pending
    }
}

impl Default for AsyncLatch {
    fn default() -> Self {
        AsyncLatch::new()
    }
}

impl Latch for AsyncLatch {
    fn set(&self) {
        let wakers = {
            let mut waiters = self.waiters.lock();
            self.done.store(true, Ordering::Release);
            // Notify blocking waiters while holding the lock (same
            // missed-signal argument as LockLatch).
            self.cond.notify_all();
            std::mem::take(&mut *waiters)
        };
        // Wake executors outside the lock: a waker may run arbitrary
        // executor code, and it must not be able to deadlock against a
        // waiter taking `waiters`.
        for waker in wakers {
            waker.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_latch_starts_unset() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
    }

    #[test]
    fn lock_latch_cross_thread() {
        let l = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            l2.set();
        });
        l.wait();
        h.join().unwrap();
    }

    #[test]
    fn lock_latch_set_before_wait() {
        let l = LockLatch::new();
        l.set();
        l.wait(); // must not block
    }

    /// Waker that flips a flag and unparks a thread, for poll tests.
    fn flag_waker(flag: Arc<std::sync::atomic::AtomicBool>) -> std::task::Waker {
        struct FlagWake(Arc<std::sync::atomic::AtomicBool>);
        impl std::task::Wake for FlagWake {
            fn wake(self: Arc<Self>) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        std::task::Waker::from(Arc::new(FlagWake(flag)))
    }

    #[test]
    fn async_latch_poll_then_set_wakes() {
        let l = Arc::new(AsyncLatch::new());
        let woken = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waker = flag_waker(Arc::clone(&woken));
        assert_eq!(l.poll_set(&waker), Poll::Pending);
        assert!(!woken.load(Ordering::SeqCst));
        l.set();
        assert!(woken.load(Ordering::SeqCst));
        assert_eq!(l.poll_set(&waker), Poll::Ready(()));
    }

    #[test]
    fn async_latch_set_before_poll_is_ready() {
        let l = AsyncLatch::new();
        l.set();
        let woken = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waker = flag_waker(Arc::clone(&woken));
        assert_eq!(l.poll_set(&waker), Poll::Ready(()));
        // No spurious wake: the waker was never parked.
        assert!(!woken.load(Ordering::SeqCst));
    }

    #[test]
    fn async_latch_blocking_wait_cross_thread() {
        let l = Arc::new(AsyncLatch::new());
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            l2.set();
        });
        l.wait();
        assert!(l.probe());
        h.join().unwrap();
    }

    #[test]
    fn async_latch_mixed_waiters() {
        let l = Arc::new(AsyncLatch::new());
        let woken = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waker = flag_waker(Arc::clone(&woken));
        assert_eq!(l.poll_set(&waker), Poll::Pending);
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || l2.wait());
        std::thread::sleep(std::time::Duration::from_millis(5));
        l.set();
        h.join().unwrap();
        assert!(woken.load(Ordering::SeqCst));
    }
}
