//! The worker registry: deques, stealing, sleeping, and the helping
//! `join` loop.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_deque::{Injector, Steal, Stealer, Worker};
use crossbeam_utils::Backoff;
use parking_lot::{Condvar, Mutex};

use crate::job::JobRef;
use crate::latch::SpinLatch;
use crate::stats::{PoolStats, TenantCounters, TenantSlot, WorkerCounters};

/// Shared state of one thread pool.
pub(crate) struct Registry {
    stealers: Vec<Stealer<JobRef>>,
    injector: Injector<JobRef>,
    sleep_mutex: Mutex<()>,
    sleep_cond: Condvar,
    idle_workers: AtomicUsize,
    terminate: AtomicBool,
    num_threads: usize,
    /// Placement group of each worker (contiguous ranges of worker
    /// indices, one range per group). Victim selection in `find_work`
    /// sweeps same-group peers before crossing a group boundary, and a
    /// successful cross-group steal is counted separately — the
    /// steal-locally-first discipline NUMA-aware schedulers use to keep
    /// work on the socket that owns its cache lines.
    groups: Vec<usize>,
    /// Number of distinct placement groups (`1` = no grouping; victim
    /// order then degenerates to the classic single randomized sweep).
    num_groups: usize,
    /// `Some(seed)` puts the pool in deterministic mode: worker steal
    /// RNGs are derived from the seed and [`Registry::live_workers`]
    /// reports `num_threads` unconditionally, so schedule-dependent
    /// decisions replay bit-for-bit. See [`crate::Pool::new_seeded`].
    seed: Option<u64>,
    /// One padded counter slot per worker; written by that worker only.
    counters: Vec<WorkerCounters>,
    /// Crash-injection flags, one per worker slot: when set, that worker
    /// panics out of its main loop at the next iteration (then the flag
    /// is cleared and the registry respawns the worker). Test/fault
    /// hook; see [`crate::Pool::inject_worker_crash`].
    kill_requests: Vec<AtomicBool>,
    /// Workers respawned after an unexpected unwind out of `main_loop`.
    respawns: AtomicU64,
    /// Join handles of respawned workers, reaped by `Pool::drop`.
    respawned: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// External `install`s declined by admission control and degraded
    /// to sequential in-caller execution.
    sheds: AtomicU64,
    /// External submissions currently admitted (injected or running):
    /// `install`s plus reservations taken via [`Registry::try_reserve`].
    inflight: AtomicUsize,
    /// Shed `install`s currently running degraded on their caller's
    /// thread. Tracked separately from `inflight` so degraded work does
    /// not consume admission slots.
    degraded_inflight: AtomicUsize,
    /// Admission cap (explicit constructor argument, or read from
    /// `BDS_MAX_INFLIGHT` at pool creation); `None` means no explicit
    /// cap, saturation shedding only.
    max_inflight: Option<usize>,
    /// Named per-tenant counter slots handed out by
    /// [`Registry::tenant_slot`]; snapshotted into
    /// [`PoolStats::tenants`]. Small (one entry per tenant) and touched
    /// only on slot creation and snapshot, so a mutex is fine.
    tenants: Mutex<Vec<Arc<TenantCounters>>>,
}

thread_local! {
    /// Pointer to the `WorkerThread` owned by this OS thread, if it is a
    /// pool worker. Null otherwise.
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

/// Per-worker state, owned by its OS thread and reachable from TLS.
pub(crate) struct WorkerThread {
    worker: Worker<JobRef>,
    registry: Arc<Registry>,
    index: usize,
    /// xorshift state for randomized steal order.
    rng: Cell<u64>,
    /// Separate xorshift state for retry-backoff jitter (see
    /// [`WorkerThread::seeded_jitter_next`]); kept apart from the steal
    /// RNG so drawing jitter never perturbs victim selection replay.
    jitter: Cell<u64>,
}

impl Registry {
    /// Spawn `num_threads` workers and return the shared registry plus the
    /// join handles (kept by the `Pool` so drop can reap them).
    pub(crate) fn new(
        num_threads: usize,
        seed: Option<u64>,
        max_inflight: Option<usize>,
        num_groups: Option<usize>,
    ) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        assert!(num_threads > 0, "a pool needs at least one thread");
        let num_groups = num_groups
            .or_else(Registry::env_numa_groups)
            .unwrap_or_else(probe_numa_nodes)
            .clamp(1, num_threads);
        let groups = (0..num_threads)
            .map(|idx| idx * num_groups / num_threads)
            .collect();
        let workers: Vec<Worker<JobRef>> =
            (0..num_threads).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        let registry = Arc::new(Registry {
            stealers,
            injector: Injector::new(),
            sleep_mutex: Mutex::new(()),
            sleep_cond: Condvar::new(),
            idle_workers: AtomicUsize::new(0),
            terminate: AtomicBool::new(false),
            num_threads,
            groups,
            num_groups,
            seed,
            counters: (0..num_threads).map(|_| WorkerCounters::default()).collect(),
            kill_requests: (0..num_threads).map(|_| AtomicBool::new(false)).collect(),
            respawns: AtomicU64::new(0),
            respawned: Mutex::new(Vec::new()),
            sheds: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            degraded_inflight: AtomicUsize::new(0),
            max_inflight,
            tenants: Mutex::new(Vec::new()),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, worker)| {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("bds-pool-{index}"))
                    .spawn(move || worker_main(worker, registry, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (registry, handles)
    }

    /// The admission cap configured by the environment
    /// (`BDS_MAX_INFLIGHT`), used by the pool constructors that do not
    /// take an explicit cap.
    pub(crate) fn env_max_inflight() -> Option<usize> {
        std::env::var("BDS_MAX_INFLIGHT")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&m| m > 0)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    pub(crate) fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Placement group of worker `index`.
    pub(crate) fn group_of(&self, index: usize) -> usize {
        self.groups[index]
    }

    /// The placement-group count requested by the environment
    /// (`BDS_NUMA_GROUPS`), used by the pool constructors that do not
    /// take an explicit group count. Zero or unparsable values are
    /// ignored.
    pub(crate) fn env_numa_groups() -> Option<usize> {
        std::env::var("BDS_NUMA_GROUPS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&g| g > 0)
    }

    /// Push a job from an external thread.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.push(job);
        self.notify_workers();
    }

    pub(crate) fn begin_terminate(&self) {
        self.terminate.store(true, Ordering::SeqCst);
        // Grab the lock so no worker can be between its idle re-check and
        // its wait when we notify.
        let _guard = self.sleep_mutex.lock();
        self.sleep_cond.notify_all();
    }

    fn notify_workers(&self) {
        if self.idle_workers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_mutex.lock();
            self.sleep_cond.notify_all();
        }
    }

    fn terminating(&self) -> bool {
        self.terminate.load(Ordering::SeqCst)
    }

    fn any_visible_work(&self) -> bool {
        !self.injector.is_empty() || self.stealers.iter().any(|s| !s.is_empty())
    }

    /// Snapshot every worker's counters (racy while work is in flight;
    /// exact in quiescence).
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.counters.iter().map(WorkerCounters::snapshot).collect(),
            num_groups: self.num_groups,
            respawns: self.respawns.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            recovery: crate::recovery::recovery_counts(),
            tenants: self
                .tenants
                .lock()
                .iter()
                .map(|t| t.snapshot())
                .collect(),
        }
    }

    /// Ask worker `index` to crash: it panics out of its main loop at
    /// the next iteration (within ~1 ms even when idle, thanks to the
    /// park timeout) and the registry respawns it onto the same deque.
    pub(crate) fn request_worker_crash(&self, index: usize) {
        self.kill_requests[index].store(true, Ordering::Release);
        // Wake a parked target promptly; a busy one polls on its next
        // main-loop iteration.
        let _guard = self.sleep_mutex.lock();
        self.sleep_cond.notify_all();
    }

    fn poll_crash(&self, index: usize) {
        if self.kill_requests[index].swap(false, Ordering::AcqRel) {
            std::panic::panic_any(InjectedCrash);
        }
    }

    /// Admission control for external `install`s. `Admitted` carries the
    /// RAII guard for the in-flight gauge; `Shed` means the call was
    /// declined (counted in `sheds`) and must degrade to sequential
    /// in-caller execution — its guard tracks the degraded run on the
    /// `degraded_inflight` gauge so a panic in the degraded closure
    /// still balances the books.
    ///
    /// Sheds when the explicit `max_inflight` cap is reached, or when
    /// the pool is saturated: every worker busy *and* the injector
    /// backlog beyond `2 * num_threads` queued jobs. Seeded
    /// (deterministic) pools never shed — admission decisions depend on
    /// racy gauges, and replay must not.
    pub(crate) fn try_admit(&self) -> Admission<'_> {
        if self.reserve_slot() {
            Admission::Admitted(InflightGuard(self))
        } else {
            self.sheds.fetch_add(1, Ordering::Relaxed);
            self.degraded_inflight.fetch_add(1, Ordering::SeqCst);
            Admission::Shed(ShedGuard(self))
        }
    }

    /// Quiet admission probe for external schedulers (`bds-service`'s
    /// dispatcher): reserve one in-flight slot under the same rules as
    /// [`Registry::try_admit`], but without counting a refusal as a
    /// shed — the caller keeps its work queued and retries, it does not
    /// degrade. The returned token is owned (keeps the registry alive),
    /// so it can travel into a spawned job and be released on
    /// completion.
    pub(crate) fn try_reserve(self: &Arc<Registry>) -> Option<AdmitToken> {
        self.reserve_slot().then(|| AdmitToken {
            registry: Arc::clone(self),
        })
    }

    /// Try to take one in-flight admission slot. The explicit cap is
    /// enforced with a CAS loop, so `inflight` never exceeds
    /// `max_inflight` — concurrent racers at the boundary shed instead
    /// of overshooting.
    fn reserve_slot(&self) -> bool {
        if self.seed.is_some() {
            // Deterministic pools admit unconditionally (but still
            // track the gauge).
            self.inflight.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        if self.saturated() {
            return false;
        }
        match self.max_inflight {
            None => {
                self.inflight.fetch_add(1, Ordering::SeqCst);
                true
            }
            Some(max) => {
                let mut current = self.inflight.load(Ordering::SeqCst);
                loop {
                    if current >= max {
                        return false;
                    }
                    match self.inflight.compare_exchange_weak(
                        current,
                        current + 1,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(_) => return true,
                        Err(observed) => current = observed,
                    }
                }
            }
        }
    }

    fn saturated(&self) -> bool {
        let all_busy = self
            .counters
            .iter()
            .all(|c| c.busy.load(Ordering::Relaxed) != 0);
        all_busy && self.injector.len() > 2 * self.num_threads
    }

    /// Current value of the admitted-in-flight gauge.
    pub(crate) fn inflight_count(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Current value of the degraded-in-flight gauge.
    pub(crate) fn degraded_count(&self) -> usize {
        self.degraded_inflight.load(Ordering::SeqCst)
    }

    /// Get or create the named per-tenant counter slot.
    pub(crate) fn tenant_slot(&self, name: &str) -> TenantSlot {
        let mut tenants = self.tenants.lock();
        if let Some(existing) = tenants.iter().find(|t| t.name() == name) {
            return TenantSlot::new(Arc::clone(existing));
        }
        let counters = Arc::new(TenantCounters::new(name));
        tenants.push(Arc::clone(&counters));
        TenantSlot::new(counters)
    }

    /// Respawn a crashed worker onto its old deque (stealers keep
    /// working: they share the deque's backing store). No-op once the
    /// pool is terminating. The new handle is parked in `respawned` for
    /// `Pool::drop` to reap.
    fn respawn_worker(self: &Arc<Registry>, worker: Worker<JobRef>, index: usize) {
        if self.terminating() {
            return;
        }
        self.respawns.fetch_add(1, Ordering::Relaxed);
        let registry = Arc::clone(self);
        if let Ok(handle) = std::thread::Builder::new()
            .name(format!("bds-pool-{index}"))
            .spawn(move || worker_main(worker, registry, index))
        {
            self.respawned.lock().push(handle);
        }
    }

    /// Take the handles of workers respawned so far (drop-time reaping;
    /// call in a loop until empty, since a respawned worker may itself
    /// crash and respawn a successor).
    pub(crate) fn drain_respawned(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut *self.respawned.lock())
    }

    /// Pop one job from the injector, if any. Only used by `Pool::drop`
    /// after every worker has exited, to run leftover spawned jobs
    /// rather than leak them.
    pub(crate) fn pop_injected(&self) -> Option<JobRef> {
        loop {
            match self.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }

    /// Zero every worker's counters. Concurrent increments may survive
    /// the reset; call between regions of interest, not during them.
    pub(crate) fn reset_stats(&self) {
        for c in &self.counters {
            c.reset();
        }
    }

    /// Estimate how many workers are free to pick up new top-level work:
    /// `num_threads` minus the workers whose main loop is currently
    /// inside a job, never below 1. `me` (a worker index) is excluded
    /// from the busy count so a worker sizing work for *itself* counts
    /// its own slot as available — from a quiescent pool, or from the
    /// closure of a plain `install`, the answer is exactly
    /// `num_threads`, which keeps geometry decisions deterministic in
    /// the common case.
    pub(crate) fn live_workers(&self, me: Option<usize>) -> usize {
        if self.seed.is_some() {
            // Deterministic mode: the busy-gauge read is racy (a thief
            // may not have cleared its gauge yet after finishing), so a
            // seeded pool reports its full width unconditionally —
            // geometry decisions become pure functions of their other
            // inputs.
            return self.num_threads;
        }
        let busy_others = self
            .counters
            .iter()
            .enumerate()
            .filter(|(i, c)| Some(*i) != me && c.busy.load(Ordering::Relaxed) != 0)
            .count();
        self.num_threads.saturating_sub(busy_others).max(1)
    }
}

/// Count the machine's NUMA nodes by probing
/// `/sys/devices/system/node/node*`. Falls back to 1 (no grouping) on
/// platforms without that sysfs tree or when it is unreadable — the
/// pool then behaves exactly as it did before placement awareness.
fn probe_numa_nodes() -> usize {
    let Ok(entries) = std::fs::read_dir("/sys/devices/system/node") else {
        return 1;
    };
    let nodes = entries
        .flatten()
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.strip_prefix("node")
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        })
        .count();
    nodes.max(1)
}

/// Panic payload of an injected worker crash (the fault-injection hook
/// behind [`crate::Pool::inject_worker_crash`]).
struct InjectedCrash;

/// Outcome of [`Registry::try_admit`]: either way the caller gets an
/// RAII guard, so both the admitted and the degraded path balance their
/// gauge even when the governed closure unwinds.
pub(crate) enum Admission<'a> {
    /// The call may run on the pool; holds an in-flight slot.
    Admitted(#[allow(dead_code)] InflightGuard<'a>),
    /// The call was shed and must run degraded on the caller's thread.
    Shed(#[allow(dead_code)] ShedGuard<'a>),
}

/// RAII: decrements the registry's external-install gauge on drop.
pub(crate) struct InflightGuard<'a>(&'a Registry);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// RAII: decrements the registry's degraded-in-flight gauge on drop.
/// Held across the whole degraded execution of a shed `install`, so the
/// gauge is balanced whether the closure returns or panics.
pub(crate) struct ShedGuard<'a>(&'a Registry);

impl Drop for ShedGuard<'_> {
    fn drop(&mut self) {
        self.0.degraded_inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// An owned in-flight admission slot, handed out by
/// [`crate::Pool::try_reserve`]. Dropping the token releases the slot.
///
/// Unlike the borrow-based guard used by `install`, the token holds the
/// registry alive, so an external scheduler can move it into a spawned
/// job and release admission exactly when the job finishes.
pub struct AdmitToken {
    registry: Arc<Registry>,
}

impl Drop for AdmitToken {
    fn drop(&mut self) {
        self.registry.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for AdmitToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmitToken").finish_non_exhaustive()
    }
}

/// RAII: marks a worker's `busy` gauge for the span of one top-level
/// job execution, clearing it even if the job unwinds.
struct BusyGuard<'a>(&'a WorkerCounters);

impl<'a> BusyGuard<'a> {
    fn new(counters: &'a WorkerCounters) -> Self {
        counters.busy.store(1, Ordering::Relaxed);
        BusyGuard(counters)
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.busy.store(0, Ordering::Relaxed);
    }
}

/// Salt decorrelating the per-worker jitter stream from the steal-RNG
/// stream derived from the same pool seed.
const JITTER_SALT: u64 = 0x6A17_7E52_BACC_0FF5;

/// SplitMix64 finalizer: decorrelates per-worker RNG streams derived
/// from one pool seed (also used for retry jitter in `govern`).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn worker_main(worker: Worker<JobRef>, registry: Arc<Registry>, index: usize) {
    // xorshift64* needs a nonzero state; `| 1` guarantees it either way.
    let rng_seed = match registry.seed {
        Some(seed) => splitmix64(seed ^ (index as u64 + 1)) | 1,
        None => 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index as u64 + 1) | 1,
    };
    // Jitter stream: decorrelated from the steal RNG by a fixed salt, so
    // seeded pools replay both steal order *and* backoff delays.
    let jitter_seed = match registry.seed {
        Some(seed) => splitmix64(seed ^ JITTER_SALT ^ (index as u64 + 1)) | 1,
        None => 0xD1B5_4A32_D192_ED03_u64.wrapping_mul(index as u64 + 1) | 1,
    };
    let me = WorkerThread {
        worker,
        registry,
        index,
        rng: Cell::new(rng_seed),
        jitter: Cell::new(jitter_seed),
    };
    WORKER.with(|w| w.set(&me as *const WorkerThread));
    // Job panics are caught at the join point and never unwind the main
    // loop; anything that *does* unwind here is a crashed worker — the
    // injected-crash hook, or a scheduler bug. Either way: salvage the
    // deque (stealers share its backing store, so queued jobs survive)
    // and respawn a replacement at the same index.
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| me.main_loop()));
    WORKER.with(|w| w.set(std::ptr::null()));
    if outcome.is_err() {
        let WorkerThread {
            worker, registry, ..
        } = me;
        registry.respawn_worker(worker, index);
    }
}

impl WorkerThread {
    /// The `WorkerThread` of the current OS thread, if any.
    ///
    /// SAFETY of the returned reference: a worker's `WorkerThread` lives
    /// for the whole life of its thread's main loop, and the reference is
    /// only used from that same thread.
    pub(crate) fn current() -> Option<&'static WorkerThread> {
        WORKER.with(|w| {
            let ptr = w.get();
            if ptr.is_null() {
                None
            } else {
                Some(unsafe { &*ptr })
            }
        })
    }

    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// This worker's index within its registry.
    pub(crate) fn index(&self) -> usize {
        self.index
    }

    /// Push a job onto the local LIFO deque, waking a sleeper if any.
    pub(crate) fn push(&self, job: JobRef) {
        self.worker.push(job);
        self.registry.notify_workers();
    }

    /// Pop the most recently pushed local job.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        self.worker.pop()
    }

    fn next_victim(&self) -> usize {
        // xorshift64*
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        (x % self.registry.num_threads as u64) as usize
    }

    /// The next retry-backoff jitter draw from this worker's seeded
    /// stream, or `None` when the pool is not in deterministic mode
    /// (callers then fall back to the process-global jitter source).
    /// Derived from the pool seed like the steal RNG, so a
    /// `BDS_CHECK_SEED` replay of a retried pipeline sleeps identical
    /// delays.
    pub(crate) fn seeded_jitter_next(&self) -> Option<u64> {
        self.registry.seed?;
        let mut x = self.jitter.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.set(x);
        Some(x.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// This worker's counter slot.
    #[inline]
    fn counters(&self) -> &WorkerCounters {
        &self.registry.counters[self.index]
    }

    /// Find a job: local deque, then injector, then steal from a peer.
    ///
    /// Every `Some` return bumps exactly one acquisition counter
    /// (local/injector/steal) *and* `jobs_executed` — both call sites run
    /// the job immediately — which is the accounting invariant the stats
    /// tests check.
    pub(crate) fn find_work(&self) -> Option<JobRef> {
        let counters = self.counters();
        if let Some(job) = self.worker.pop() {
            WorkerCounters::bump(&counters.local_pops);
            WorkerCounters::bump(&counters.jobs_executed);
            return Some(job);
        }
        loop {
            match self.registry.injector.steal_batch_and_pop(&self.worker) {
                Steal::Success(job) => {
                    WorkerCounters::bump(&counters.injector_pops);
                    WorkerCounters::bump(&counters.jobs_executed);
                    return Some(job);
                }
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        let n = self.registry.num_threads;
        let my_group = self.registry.groups[self.index];
        let start = self.next_victim();
        // Steal-locally-first: one randomized sweep over same-group
        // peers, then a second over the remaining (cross-group) peers.
        // With one group the first sweep visits everyone and the second
        // is empty — the classic single randomized sweep. Each peer is
        // probed at most once per idle sweep either way, so the
        // failed-steal accounting (`P-1` per empty sweep) is unchanged.
        for cross in [false, true] {
            for k in 0..n {
                let victim = (start + k) % n;
                if victim == self.index {
                    continue;
                }
                if (self.registry.groups[victim] != my_group) != cross {
                    continue;
                }
                loop {
                    match self.registry.stealers[victim].steal() {
                        Steal::Success(job) => {
                            WorkerCounters::bump(&counters.steals);
                            if cross {
                                WorkerCounters::bump(&counters.cross_steals);
                            }
                            WorkerCounters::bump(&counters.jobs_executed);
                            return Some(job);
                        }
                        Steal::Empty => {
                            WorkerCounters::bump(&counters.failed_steals);
                            break;
                        }
                        Steal::Retry => continue,
                    }
                }
            }
        }
        None
    }

    fn main_loop(&self) {
        loop {
            WorkerCounters::bump(&self.counters().heartbeats);
            self.registry.poll_crash(self.index);
            if let Some(job) = self.find_work() {
                // The gauge covers the whole job tree: nested joins and
                // helping all happen inside this frame, so one flag per
                // worker suffices.
                let _busy = BusyGuard::new(self.counters());
                // SAFETY: ownership of the JobRef means we are its unique
                // executor.
                unsafe { job.execute() };
                continue;
            }
            if self.registry.terminating() {
                return;
            }
            // Go idle. The timeout makes a lost wakeup merely a latency
            // blip, never a hang.
            let mut guard = self.registry.sleep_mutex.lock();
            if self.registry.any_visible_work() || self.registry.terminating() {
                continue;
            }
            self.registry.idle_workers.fetch_add(1, Ordering::SeqCst);
            let counters = self.counters();
            WorkerCounters::bump(&counters.parks);
            let parked_at = Instant::now();
            let wait = self
                .registry
                .sleep_cond
                .wait_for(&mut guard, Duration::from_millis(1));
            counters
                .idle_ns
                .fetch_add(parked_at.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if !wait.timed_out() {
                WorkerCounters::bump(&counters.unparks);
            }
            self.registry.idle_workers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Busy-wait for `latch`, executing other jobs meanwhile (the classic
    /// "helping" loop that makes nested fork-join deadlock-free).
    pub(crate) fn wait_until(&self, latch: &SpinLatch) {
        let backoff = Backoff::new();
        while !latch.probe() {
            if let Some(job) = self.find_work() {
                // SAFETY: unique executor, as above.
                unsafe { job.execute() };
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
    }
}
