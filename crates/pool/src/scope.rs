//! Structured task scopes: spawn any number of tasks that may borrow
//! from the enclosing stack frame; the scope does not return until all
//! of them have finished (the rayon `scope` design, reproduced on this
//! pool).
//!
//! `join` covers binary fork-join; `scope` covers irregular fan-out —
//! e.g. spawning one task per child of a tree node discovered at
//! runtime.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam_utils::Backoff;

use crate::job::JobRef;
use crate::registry::WorkerThread;

/// A scope in which tasks borrowing `'scope` data may be spawned.
pub struct Scope<'scope> {
    /// Number of spawned tasks not yet finished.
    pending: AtomicUsize,
    /// First panic captured from a spawned task.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant lifetime marker: closures may borrow `'scope` data but
    /// the scope cannot outlive it.
    marker: PhantomData<&'scope mut &'scope ()>,
}

struct HeapJob<'scope> {
    func: Box<dyn FnOnce() + Send + 'scope>,
    scope: *const Scope<'scope>,
}

impl<'scope> HeapJob<'scope> {
    /// Erase into a JobRef.
    ///
    /// SAFETY (caller): the scope must stay alive until `pending` drops
    /// to zero, which `scope()` guarantees by waiting before returning.
    unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef::from_raw_parts(Box::into_raw(self) as *const (), Self::execute_erased)
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let job = Box::from_raw(ptr as *mut Self);
        let scope = &*job.scope;
        let result = panic::catch_unwind(AssertUnwindSafe(job.func));
        if let Err(payload) = result {
            let mut slot = scope.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(payload);
        }
        // Release ordering: the spawned task's effects happen-before the
        // scope's exit observes the decrement.
        scope.pending.fetch_sub(1, Ordering::Release);
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may borrow from the enclosing frame. It runs at
    /// some point before the scope returns, on any worker.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::Relaxed);
        let job = Box::new(HeapJob {
            func: Box::new(f),
            scope: self as *const Scope<'scope>,
        });
        // SAFETY: scope() waits for pending == 0 before returning, so
        // `self` (and everything 'scope borrows) outlives the job.
        let job_ref = unsafe { job.into_job_ref() };
        match WorkerThread::current() {
            Some(worker) => worker.push(job_ref),
            None => crate::global_pool_registry().inject(job_ref),
        }
    }
}

/// Create a scope, run `f` with it, wait for every spawned task, then
/// return `f`'s result. If any task panicked, the panic is resumed here
/// (after all tasks have still completed).
///
/// ```
/// use std::sync::atomic::{AtomicU32, Ordering};
/// let hits = AtomicU32::new(0);
/// bds_pool::scope(|s| {
///     for _ in 0..16 {
///         s.spawn(|| { hits.fetch_add(1, Ordering::Relaxed); });
///     }
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 16);
/// ```
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    // Wait for all spawned tasks, helping if we are a worker.
    match WorkerThread::current() {
        Some(worker) => {
            let backoff = Backoff::new();
            while s.pending.load(Ordering::Acquire) != 0 {
                if let Some(job) = worker.find_work() {
                    // SAFETY: unique executor of a stolen/popped job.
                    unsafe { job.execute() };
                    backoff.reset();
                } else {
                    backoff.snooze();
                }
            }
        }
        None => {
            let backoff = Backoff::new();
            while s.pending.load(Ordering::Acquire) != 0 {
                backoff.snooze();
            }
        }
    }
    let panicked = s
        .panic
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    match (result, panicked) {
        (Ok(r), None) => r,
        (_, Some(payload)) => panic::resume_unwind(payload),
        (Err(payload), None) => panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_spawned_tasks() {
        let pool = Pool::new(4);
        let counter = AtomicU64::new(0);
        pool.install(|| {
            scope(|s| {
                for i in 0..1000u64 {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(i, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn scope_tasks_can_borrow_stack_data() {
        let pool = Pool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let total = AtomicU64::new(0);
        pool.install(|| {
            scope(|s| {
                for chunk in data.chunks(7) {
                    let total = &total;
                    s.spawn(move || {
                        total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn nested_scopes() {
        let pool = Pool::new(3);
        let counter = AtomicU64::new(0);
        pool.install(|| {
            scope(|outer| {
                for _ in 0..10 {
                    let counter = &counter;
                    outer.spawn(move || {
                        scope(|inner| {
                            for _ in 0..10 {
                                inner.spawn(move || {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_from_external_thread() {
        // Not on a worker: jobs go through the global injector.
        let hits = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..50 {
                let hits = &hits;
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn scope_propagates_task_panics_after_completion() {
        let pool = Pool::new(2);
        let completed = AtomicU64::new(0);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                scope(|s| {
                    for i in 0..20 {
                        let completed = &completed;
                        s.spawn(move || {
                            if i == 7 {
                                panic!("task 7 exploded");
                            }
                            completed.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            })
        }));
        assert!(r.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 19);
        assert_eq!(pool.install(|| 5), 5);
    }

    #[test]
    fn scope_with_no_spawns_returns_immediately() {
        let got = scope(|_| 42);
        assert_eq!(got, 42);
    }
}
