//! # bds-pool — fork-join substrate for block-delayed sequences
//!
//! The paper's library needs exactly one parallel primitive, `apply`
//! (Figure 7): run `f(i)` for every `0 <= i < n` in parallel. The paper
//! inherits it from the ParlayLib / MPL work-stealing schedulers; this
//! crate reproduces that substrate: a Chase-Lev work-stealing fork-join
//! pool with
//!
//! * [`join`] — run two closures, potentially in parallel, with the
//!   classic stack-job + helping-waiter protocol;
//! * [`parallel_for`] / [`parallel_for_grain`] — divide-and-conquer loops
//!   with granularity control;
//! * [`apply`] — the paper's primitive (grain 1: each index is expected to
//!   be a coarse unit such as one block);
//! * [`Pool`] — an explicitly sized pool, so benchmark harnesses can sweep
//!   the processor count `P` (Figure 15).
//!
//! Calls made while not on a pool thread transparently run on a lazily
//! created global pool sized by [`std::thread::available_parallelism`].
//!
//! ```
//! let total: u64 = bds_pool::Pool::new(2).install(|| {
//!     let (a, b) = bds_pool::join(|| 1u64 + 1, || 40u64);
//!     a + b
//! });
//! assert_eq!(total, 42);
//! ```

pub mod cancel;
pub mod govern;
mod job;
mod latch;
pub mod recovery;
mod registry;
mod scope;
pub mod stats;

pub use cancel::{apply_cancellable, CancelToken, PollTicker};
pub use cancel::{reset_ticker_polls, shield, ticker_polls, with_token};
pub use govern::{backoff_delay, retry_with_backoff, run_governed, Budget, Exceeded};
pub use latch::{AsyncLatch, Latch};
pub use recovery::{
    recover_block, recover_effect_block, recovery_counts, run_recovered,
    run_recovered_counting, BlockFailed, FaultClass, RecoveryCounts, RetryPolicy,
};
pub use registry::AdmitToken;
pub use stats::{PoolStats, TenantSlot, TenantStats, WorkerStats};

/// Model-checking facade: exposes the internal synchronization
/// primitives so `tests/loom.rs` can explore their interleavings under
/// `loom`. Compiled only with `--features loom`; this is test-only API
/// with no stability guarantee.
#[cfg(feature = "loom")]
pub mod model_check {
    pub use crate::latch::{Latch, LockLatch, SpinLatch};

    use crate::cancel::CancelToken;
    use crate::recovery::{BlockFailed, RetryCtx, RetryPolicy};
    use std::sync::Arc;

    /// Record `chunks` skipped leaf chunks against `token`, exactly as
    /// the cancellable loop primitives do (incrementing every ancestor
    /// too), so models can check the counter under contention.
    pub fn note_skipped(token: &CancelToken, chunks: u64) {
        token.note_skipped(chunks);
    }

    /// A fresh recovery context under the default policy, for modeling
    /// concurrent quarantine recording.
    pub fn retry_ctx() -> Arc<RetryCtx> {
        Arc::new(RetryCtx::new(RetryPolicy::default()))
    }

    /// Record a quarantined block against `ctx`, exactly as the retry
    /// loop does: among concurrent records the lowest ordinal wins.
    pub fn record_block_failure(ctx: &RetryCtx, ordinal: usize, attempts: usize) {
        ctx.record_failure(BlockFailed { ordinal, attempts });
    }

    /// Take the recorded quarantine, as `run_recovered`'s join does.
    pub fn take_block_failure(ctx: &RetryCtx) -> Option<BlockFailed> {
        ctx.take_failure()
    }
}

use std::sync::{Arc, OnceLock};

use job::{HeapJob, StackJob};
use latch::{LockLatch, SpinLatch};
use registry::{Admission, Registry, WorkerThread};

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool terminates its workers (after in-flight work
/// completes; [`Pool::install`] blocks until its closure is done, so there
/// is never dangling work at drop time).
pub struct Pool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Create a pool with exactly `num_threads` workers.
    ///
    /// # Panics
    /// Panics if `num_threads == 0`.
    pub fn new(num_threads: usize) -> Pool {
        let (registry, handles) =
            Registry::new(num_threads, None, Registry::env_max_inflight(), None);
        Pool { registry, handles }
    }

    /// Create a pool whose workers are partitioned into exactly
    /// `num_groups` placement groups (contiguous ranges of worker
    /// indices, as equal-sized as divisibility allows). Idle workers
    /// sweep same-group victims before crossing a group boundary, and
    /// successful cross-group steals are counted in
    /// [`WorkerStats::cross_steals`] — the steal-locally-first
    /// discipline that keeps work on the socket that owns its cache
    /// lines.
    ///
    /// The other constructors pick the group count automatically:
    /// `BDS_NUMA_GROUPS` if set, else one group per NUMA node probed
    /// from `/sys/devices/system/node` (so single-socket machines get
    /// one group and the classic randomized sweep). This constructor
    /// overrides both, for in-process A/B comparisons.
    ///
    /// `num_groups` is clamped to `[1, num_threads]`.
    ///
    /// # Panics
    /// Panics if `num_threads == 0`.
    pub fn new_grouped(num_threads: usize, num_groups: usize) -> Pool {
        let (registry, handles) = Registry::new(
            num_threads,
            None,
            Registry::env_max_inflight(),
            Some(num_groups.max(1)),
        );
        Pool { registry, handles }
    }

    /// Number of placement groups this pool's workers are partitioned
    /// into (1 unless NUMA grouping is active).
    pub fn num_groups(&self) -> usize {
        self.registry.num_groups()
    }

    /// Placement group of worker `index`.
    ///
    /// # Panics
    /// Panics if `index >= num_threads()`.
    pub fn worker_group(&self, index: usize) -> usize {
        assert!(index < self.num_threads(), "worker index out of range");
        self.registry.group_of(index)
    }

    /// Create a pool with an explicit admission cap: at most
    /// `max_inflight` external [`Pool::install`] calls (plus
    /// [`Pool::try_reserve`] slots) are admitted concurrently; the rest
    /// shed to degraded in-caller execution. Overrides the
    /// `BDS_MAX_INFLIGHT` environment variable, which is racy to mutate
    /// from tests and invisible to library callers.
    ///
    /// The cap is strict: admission uses a compare-and-swap, so
    /// concurrent racers at the boundary shed rather than overshoot.
    ///
    /// # Panics
    /// Panics if `num_threads == 0` or `max_inflight == 0`.
    pub fn with_max_inflight(num_threads: usize, max_inflight: usize) -> Pool {
        assert!(max_inflight > 0, "an admission cap of 0 admits nothing");
        let (registry, handles) =
            Registry::new(num_threads, None, Some(max_inflight), None);
        Pool { registry, handles }
    }

    /// Create a pool in **deterministic mode**: every worker's
    /// steal-victim RNG is derived from `seed` (SplitMix64 per worker
    /// index), and [`Pool::live_workers`] reports `num_threads`
    /// unconditionally instead of the racy busy-gauge estimate.
    ///
    /// Two pools built with the same `(num_threads, seed)` probe steal
    /// victims in the same order and feed identical worker counts into
    /// cost-model geometry decisions, so a quiescent `install` replays
    /// the same schedule shape and block geometry run-to-run. (OS
    /// timing still decides which probe wins a race, but every
    /// schedule-*dependent* computation in this workspace — block
    /// geometry, zip alignment — sees identical inputs.) This is the
    /// replay hook behind `bds-check`'s `BDS_CHECK_SEED`.
    ///
    /// # Panics
    /// Panics if `num_threads == 0`.
    pub fn new_seeded(num_threads: usize, seed: u64) -> Pool {
        let (registry, handles) =
            Registry::new(num_threads, Some(seed), Registry::env_max_inflight(), None);
        Pool { registry, handles }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Run `f` inside the pool and return its result.
    ///
    /// While `f` runs, `join`/`parallel_for`/`apply` calls it makes use
    /// this pool's workers. If the calling thread is already a worker of
    /// this pool, `f` runs directly.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(worker) = WorkerThread::current() {
            if Arc::ptr_eq(worker.registry(), &self.registry) {
                return f();
            }
        }
        // Admission control: under sustained saturation (or past the
        // in-flight cap) run `f` degraded — sequentially on the calling
        // thread — instead of queueing unboundedly. The caller still
        // gets a correct result; it just doesn't get parallelism.
        // Seeded pools never shed. Either arm holds its RAII gauge
        // guard for the whole execution, so a panicking closure still
        // balances the in-flight accounting.
        let _admission = match self.registry.try_admit() {
            Admission::Admitted(guard) => guard,
            Admission::Shed(_shed) => return run_degraded(f),
        };
        let job = StackJob::new(f, LockLatch::new());
        // SAFETY: we block on the latch below, so the stack frame (and the
        // job in it) outlives the unique execution of the JobRef.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.inject(job_ref);
        job.latch().wait();
        // SAFETY: latch observed set; executor's writes are visible and we
        // are the unique owner collecting the result.
        unsafe { job.into_result() }
    }

    /// Spawn a fire-and-forget job on the pool: `f` runs on some worker,
    /// at some point, without blocking the caller. The asynchronous
    /// counterpart of [`Pool::install`] — submission is non-blocking, and
    /// completion is communicated through whatever `f` captured (e.g. an
    /// [`AsyncLatch`] a future is parked on; `bds-service` builds its
    /// ticket protocol this way).
    ///
    /// `spawn` deliberately bypasses admission control: an external
    /// scheduler that spawns is expected to gate itself with
    /// [`Pool::try_reserve`] first. A panic that escapes `f` unwinds the
    /// executing worker, which is detected and respawned (counted in
    /// [`PoolStats::respawns`]) — catch panics inside `f` if they are an
    /// expected outcome.
    ///
    /// Jobs still queued when the pool is dropped are run (degraded,
    /// sequentially) on the dropping thread, so a spawned job is never
    /// silently lost; panics from such teardown runs are swallowed.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let job = HeapJob::new(f);
        // SAFETY: the injected JobRef is executed exactly once — by a
        // worker, or by `Pool::drop`'s teardown drain after every worker
        // has exited.
        let job_ref = unsafe { job.into_job_ref() };
        self.registry.inject(job_ref);
    }

    /// Try to reserve one admission slot, under the same shedding rules
    /// as [`Pool::install`] (in-flight cap, saturation backlog) but
    /// without counting a refusal in [`PoolStats::sheds`] — a refused
    /// reservation is expected to stay queued at the caller and retry,
    /// not to degrade.
    ///
    /// The returned token is owned and `Send`: an external scheduler
    /// (such as `bds-service`'s dispatcher) holds one per dispatched
    /// request, moves it into the [`Pool::spawn`]ed job, and drops it on
    /// completion, so pool-level admission applies to asynchronous
    /// submissions exactly as it does to blocking `install`s.
    pub fn try_reserve(&self) -> Option<AdmitToken> {
        self.registry.try_reserve()
    }

    /// Current number of admitted external submissions in flight
    /// ([`Pool::install`] calls plus live [`AdmitToken`]s). A gauge,
    /// exact only in quiescence; rises and falls with load and returns
    /// to zero when the pool is idle — even when submissions panic.
    pub fn inflight(&self) -> usize {
        self.registry.inflight_count()
    }

    /// Current number of shed [`Pool::install`] calls running degraded
    /// on their caller's thread. Returns to zero in quiescence — even
    /// when degraded closures panic.
    pub fn degraded_inflight(&self) -> usize {
        self.registry.degraded_count()
    }

    /// Get or create the named per-tenant counter slot of this pool's
    /// statistics. Slots are keyed by name (the same name returns the
    /// same slot) and surface in [`PoolStats::tenants`]; the handle is
    /// how a multi-tenant front-end records admission and completion
    /// events against the pool it runs on.
    pub fn tenant_slot(&self, name: &str) -> TenantSlot {
        self.registry.tenant_slot(name)
    }

    /// Snapshot the pool's per-worker scheduler counters.
    ///
    /// Cheap (`P` relaxed loads per counter) and safe to call at any
    /// time; while work is in flight the snapshot is a best-effort racy
    /// read, and in quiescence it is exact. See [`stats::WorkerStats`]
    /// for field meanings and the accounting invariant.
    pub fn stats(&self) -> PoolStats {
        self.registry.stats()
    }

    /// Zero the pool's scheduler counters, so the next [`Pool::stats`]
    /// reflects only work submitted after this call. Intended between
    /// benchmark regions (e.g. between `install` calls); resetting while
    /// jobs are in flight may lose concurrent increments.
    pub fn reset_stats(&self) {
        self.registry.reset_stats();
    }

    /// Estimate how many of this pool's workers are free to pick up new
    /// top-level work right now: `num_threads()` minus the workers
    /// currently executing a job, never below 1.
    ///
    /// When called *from* one of this pool's workers, that worker does
    /// not count itself as busy (it is asking on behalf of work it is
    /// about to schedule), so from the closure of a plain
    /// [`Pool::install`] on a quiescent pool the answer is exactly
    /// [`Pool::num_threads`] — deterministic, which is what the adaptive
    /// block-geometry policy in `bds-seq` relies on. While unrelated
    /// work is in flight the estimate is a best-effort racy read.
    ///
    /// ```
    /// let pool = bds_pool::Pool::new(3);
    /// assert_eq!(pool.live_workers(), 3); // quiescent
    /// assert_eq!(pool.install(|| pool.live_workers()), 3); // self excluded
    /// ```
    pub fn live_workers(&self) -> usize {
        let me = WorkerThread::current().and_then(|w| {
            Arc::ptr_eq(w.registry(), &self.registry).then(|| w.index())
        });
        self.registry.live_workers(me)
    }

    /// Fault-injection hook: ask worker `index` to crash (panic out of
    /// its main loop). The registry detects the unwind, salvages the
    /// worker's deque, respawns a replacement at the same index, and
    /// counts the incident in [`PoolStats::respawns`]. Queued and
    /// in-flight work on *other* workers is unaffected; the crashing
    /// worker itself is between jobs when it dies (the hook is polled
    /// at the top of the main loop, never mid-job).
    ///
    /// # Panics
    /// Panics if `index >= num_threads()`.
    pub fn inject_worker_crash(&self, index: usize) {
        assert!(index < self.num_threads(), "worker index out of range");
        self.registry.request_worker_crash(index);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.registry.begin_terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // Workers respawned after a crash are reaped separately; loop,
        // because a respawned worker may itself have crashed and
        // spawned a successor before exiting.
        loop {
            let respawned = self.registry.drain_respawned();
            if respawned.is_empty() {
                break;
            }
            for handle in respawned {
                let _ = handle.join();
            }
        }
        // Every worker has exited. Jobs spawned with `Pool::spawn` that
        // no worker ever picked up would leak their boxes (and leave
        // their completion latches unset forever); run them here,
        // degraded, instead. Panics are swallowed: unwinding out of a
        // destructor aborts if we are already panicking, and a teardown
        // job's panic has no owner left to report to.
        while let Some(job) = self.registry.pop_injected() {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: the injector owned this JobRef; we are its
                // unique executor.
                run_degraded(|| unsafe { job.execute() })
            }));
        }
    }
}

thread_local! {
    /// Set while a shed `install` runs its closure degraded on the
    /// calling thread: `join` runs both sides sequentially instead of
    /// touching any pool.
    static DEGRADED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn run_degraded<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            DEGRADED.with(|d| d.set(self.0));
        }
    }
    let prev = DEGRADED.with(|d| d.replace(true));
    let _reset = Reset(prev);
    f()
}

fn is_degraded() -> bool {
    DEGRADED.with(|d| d.get())
}

/// True while the current thread is executing a shed [`Pool::install`]
/// degraded (sequentially, in-caller). Lets callers and tests observe
/// which admission path a closure took; inside a degraded run,
/// [`current_num_threads`] reports 1 and `join` never touches a pool.
pub fn running_degraded() -> bool {
    is_degraded()
}

pub use scope::{scope, Scope};

/// Registry of the global pool (crate-internal: external-thread spawns).
pub(crate) fn global_pool_registry() -> &'static Arc<registry::Registry> {
    &global_pool().registry
}

fn global_pool() -> &'static Pool {
    static_global_pool_cell().get_or_init(|| {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Pool::new(n)
    })
}

/// Number of workers in the pool the current thread would execute on: the
/// enclosing pool when called from inside [`Pool::install`] (or a worker),
/// otherwise the global pool.
pub fn current_num_threads() -> usize {
    match WorkerThread::current() {
        Some(worker) => worker.registry().num_threads(),
        None if is_degraded() => 1,
        None => global_pool().num_threads(),
    }
}

/// True if the lazily created global pool has been spawned. Lets tests
/// assert that purely delayed construction does not touch the scheduler.
pub fn global_pool_exists() -> bool {
    static_global_pool_cell().get().is_some()
}

fn static_global_pool_cell() -> &'static OnceLock<Pool> {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    &GLOBAL
}

/// [`Pool::live_workers`] of the pool the current thread would execute
/// on: the enclosing pool from inside [`Pool::install`] (or a worker),
/// otherwise the global pool (spawning it if needed). The calling
/// worker never counts itself busy, so the common quiescent case
/// deterministically equals [`current_num_threads`]; the estimate only
/// dips below that when *other* installs are running concurrently on
/// the same pool.
pub fn current_live_workers() -> usize {
    match WorkerThread::current() {
        Some(worker) => worker.registry().live_workers(Some(worker.index())),
        None if is_degraded() => 1,
        None => global_pool().live_workers(),
    }
}

/// Scheduler statistics of the pool the current thread would execute on:
/// the enclosing pool from inside [`Pool::install`] (or a worker),
/// otherwise the global pool (spawning it if needed).
pub fn pool_stats() -> PoolStats {
    match WorkerThread::current() {
        Some(worker) => worker.registry().stats(),
        None => global_pool().stats(),
    }
}

/// Reset the scheduler statistics of the ambient pool; see
/// [`pool_stats`] and [`Pool::reset_stats`].
pub fn reset_pool_stats() {
    match WorkerThread::current() {
        Some(worker) => worker.registry().reset_stats(),
        None => global_pool().reset_stats(),
    }
}

/// Execute `oper_a` and `oper_b`, potentially in parallel, and return both
/// results. Panics in either closure propagate after both have finished.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match WorkerThread::current() {
        Some(worker) => join_on_worker(worker, oper_a, oper_b),
        // Degraded mode (shed install): stay on the calling thread.
        None if is_degraded() => (oper_a(), oper_b()),
        None => global_pool().install(|| join(oper_a, oper_b)),
    }
}

fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(oper_b, SpinLatch::new());
    // SAFETY: this frame does not return until job_b has either been run
    // inline (after popping its JobRef back, so it is never executed by a
    // thief) or its latch has been set by the thief.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    worker.push(job_b_ref);

    let result_a = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(oper_a)) {
        Ok(result) => result,
        Err(payload) => {
            // `a` panicked. Before unwinding we must neutralize job_b: pop
            // it back (never ran) or wait for the thief to finish with it.
            match worker.pop() {
                Some(job) if job == job_b_ref => {}
                Some(other) => {
                    // Not ours: restore the invariant by running it (it
                    // references a frame above ours, which cannot unwind
                    // before we do). Expected unreachable under the LIFO
                    // discipline, kept for defense in depth.
                    unsafe { other.execute() };
                    worker.wait_until(job_b.latch());
                }
                None => worker.wait_until(job_b.latch()),
            }
            std::panic::resume_unwind(payload);
        }
    };

    // Fast path: job_b still on top of our deque — run it inline.
    match worker.pop() {
        Some(job) if job == job_b_ref => {
            // SAFETY: we popped the unique JobRef, so no thief can run it.
            let result_b = unsafe { job_b.run_inline() };
            return (result_a, result_b);
        }
        Some(other) => {
            // See note above: kept for safety, expected unreachable.
            unsafe { other.execute() };
        }
        None => {}
    }
    worker.wait_until(job_b.latch());
    // SAFETY: latch set; unique owner collects (or re-raises a panic from
    // the thief).
    let result_b = unsafe { job_b.into_result() };
    (result_a, result_b)
}

/// Run `f(i)` for each `i` in `lo..hi` in parallel, recursing down to
/// chunks of at most `grain` consecutive indices which run sequentially.
///
/// If an ambient [`CancelToken`] is installed (see
/// [`cancel::with_token`] and [`apply_cancellable`]) it is checked at
/// every chunk boundary: once cancelled, chunks that have not started
/// are skipped and counted on the token. Without a token the loop runs
/// unconditionally, with no synchronization beyond the joins.
pub fn parallel_for_grain<F>(lo: usize, hi: usize, grain: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    let grain = grain.max(1);
    if hi <= lo {
        return;
    }
    match cancel::current_token() {
        Some(token) => pfg_cancellable(lo, hi, grain, f, &token),
        None => pfg_plain(lo, hi, grain, f),
    }
}

fn pfg_plain<F>(lo: usize, hi: usize, grain: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    if hi - lo <= grain {
        for i in lo..hi {
            f(i);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    join(
        || pfg_plain(lo, mid, grain, f),
        || pfg_plain(mid, hi, grain, f),
    );
}

fn pfg_cancellable<F>(lo: usize, hi: usize, grain: usize, f: &F, token: &CancelToken)
where
    F: Fn(usize) + Sync,
{
    if token.is_cancelled() {
        // Count the leaf chunks this subtree would have run.
        token.note_skipped((hi - lo).div_ceil(grain) as u64);
        return;
    }
    if hi - lo <= grain {
        // Re-install the token on this (possibly stolen) worker thread
        // so nested loop primitives inside `f` inherit it.
        let _ambient = cancel::install(Some(token.clone()));
        for i in lo..hi {
            f(i);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    join(
        || pfg_cancellable(lo, mid, grain, f, token),
        || pfg_cancellable(mid, hi, grain, f, token),
    );
}

/// Run `f(i)` for each `i` in `0..n` in parallel with an automatic grain
/// of roughly `n / (8 * P)`, suitable for element-wise loops.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let p = current_num_threads();
    let grain = (n / (8 * p)).clamp(1, 4096);
    parallel_for_grain(0, n, grain, &f);
}

/// The paper's `apply` (Figure 7): run `f(i)` for every `0 <= i < n`, each
/// index as its own parallel task. Callers are expected to make each index
/// coarse (e.g. one *block* of a block-delayed sequence).
pub fn apply<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_grain(0, n, 1, &f);
}

/// Fold `0..n` in parallel: map each grain-sized chunk sequentially with
/// `fold(lo, hi)`, then combine chunk results with `combine`. Used by the
/// eager array baselines.
pub fn parallel_reduce<T, FOLD, COMBINE>(
    n: usize,
    grain: usize,
    identity: T,
    fold: &FOLD,
    combine: &COMBINE,
) -> T
where
    T: Send,
    FOLD: Fn(usize, usize) -> T + Sync,
    COMBINE: Fn(T, T) -> T + Sync,
{
    fn rec<T, FOLD, COMBINE>(
        lo: usize,
        hi: usize,
        grain: usize,
        fold: &FOLD,
        combine: &COMBINE,
    ) -> T
    where
        T: Send,
        FOLD: Fn(usize, usize) -> T + Sync,
        COMBINE: Fn(T, T) -> T + Sync,
    {
        if hi - lo <= grain {
            return fold(lo, hi);
        }
        let mid = lo + (hi - lo) / 2;
        let (left, right) = join(
            || rec(lo, mid, grain, fold, combine),
            || rec(mid, hi, grain, fold, combine),
        );
        combine(left, right)
    }
    let grain = grain.max(1);
    if n == 0 {
        return identity;
    }
    let folded = rec(0, n, grain, fold, combine);
    combine(identity, folded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn join_returns_both_results() {
        let pool = Pool::new(2);
        let (a, b) = pool.install(|| join(|| 2 + 2, || "ok"));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_outside_pool_uses_global() {
        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn nested_joins_compute_fib() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = Pool::new(4);
        assert_eq!(pool.install(|| fib(20)), 6765);
    }

    #[test]
    fn parallel_for_touches_every_index_once() {
        let n = 10_000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = Pool::new(4);
        pool.install(|| {
            parallel_for(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn apply_touches_every_index_once() {
        let n = 2_000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = Pool::new(3);
        pool.install(|| {
            apply(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn apply_zero_is_noop() {
        let pool = Pool::new(1);
        pool.install(|| apply(0, |_| panic!("must not run")));
    }

    #[test]
    fn parallel_reduce_sums() {
        let pool = Pool::new(4);
        let total = pool.install(|| {
            parallel_reduce(
                1_000_001,
                64,
                0u64,
                &|lo, hi| (lo..hi).map(|i| i as u64).sum(),
                &|a, b| a + b,
            )
        });
        assert_eq!(total, 1_000_000u64 * 1_000_001 / 2);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        let pool = Pool::new(4);
        let seen = Mutex::new(std::collections::HashSet::new());
        pool.install(|| {
            parallel_for_grain(0, 4096, 1, &|_| {
                // A little spin so tasks overlap.
                std::hint::black_box((0..200).sum::<u64>());
                seen.lock().unwrap().insert(std::thread::current().id());
            })
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected multi-thread execution"
        );
    }

    #[test]
    fn install_is_reentrant_for_same_pool() {
        let pool = Pool::new(2);
        let r = pool.install(|| pool.install(|| 7));
        assert_eq!(r, 7);
    }

    #[test]
    fn panic_in_join_b_propagates() {
        let pool = Pool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                join(|| 1, || -> i32 { panic!("b exploded") });
            })
        }));
        assert!(r.is_err());
        // Pool must still be usable afterwards.
        assert_eq!(pool.install(|| 5), 5);
    }

    #[test]
    fn panic_in_join_a_propagates_after_b_finishes() {
        let pool = Pool::new(2);
        let b_ran = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                join(
                    || -> i32 {
                        // Hold the panic until b has been stolen and run,
                        // so this deterministically exercises the
                        // wait-for-thief path of the panic protocol (the
                        // pop-back path discards b unexecuted).
                        while b_ran.load(Ordering::SeqCst) == 0 {
                            std::hint::spin_loop();
                        }
                        panic!("a exploded")
                    },
                    || b_ran.fetch_add(1, Ordering::SeqCst),
                );
            })
        }));
        assert!(r.is_err());
        assert_eq!(b_ran.load(Ordering::SeqCst), 1);
        assert_eq!(pool.install(|| 5), 5);
    }

    #[test]
    fn single_thread_pool_still_correct() {
        let pool = Pool::new(1);
        let total = pool.install(|| {
            parallel_reduce(
                10_000,
                16,
                0u64,
                &|lo, hi| (lo..hi).map(|i| i as u64).sum(),
                &|a, b| a + b,
            )
        });
        assert_eq!(total, 9_999u64 * 10_000 / 2);
    }

    #[test]
    fn many_pools_can_coexist() {
        let pools: Vec<Pool> = (1..=4).map(Pool::new).collect();
        for (k, pool) in pools.iter().enumerate() {
            let n = 1000 * (k + 1);
            let counter = AtomicUsize::new(0);
            pool.install(|| {
                apply(n, |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            });
            assert_eq!(counter.load(Ordering::Relaxed), n);
        }
    }

    #[test]
    fn seeded_pool_reports_full_width_and_computes_correctly() {
        let pool = Pool::new_seeded(2, 42);
        // Deterministic mode: live_workers is pinned to num_threads
        // even while another install is in flight.
        assert_eq!(pool.live_workers(), 2);
        let total = pool.install(|| {
            let inside = pool.live_workers();
            assert_eq!(inside, 2);
            parallel_reduce(
                10_000,
                64,
                0u64,
                &|lo, hi| (lo..hi).map(|i| i as u64).sum(),
                &|a, b| a + b,
            )
        });
        assert_eq!(total, 9_999u64 * 10_000 / 2);
        // Same seed, same answer (results are deterministic by design;
        // this exercises the seeded construction path end-to-end).
        let pool2 = Pool::new_seeded(2, 42);
        let total2 = pool2.install(|| {
            parallel_reduce(
                10_000,
                64,
                0u64,
                &|lo, hi| (lo..hi).map(|i| i as u64).sum(),
                &|a, b| a + b,
            )
        });
        assert_eq!(total, total2);
    }

    #[test]
    fn grouped_pool_partitions_workers_contiguously() {
        let pool = Pool::new_grouped(4, 2);
        assert_eq!(pool.num_groups(), 2);
        let groups: Vec<usize> = (0..4).map(|i| pool.worker_group(i)).collect();
        assert_eq!(groups, vec![0, 0, 1, 1]);
        // Uneven split still covers every group with contiguous ranges.
        let pool = Pool::new_grouped(5, 2);
        let groups: Vec<usize> = (0..5).map(|i| pool.worker_group(i)).collect();
        assert_eq!(groups, vec![0, 0, 0, 1, 1]);
        // Group count clamps to the worker count.
        let pool = Pool::new_grouped(2, 8);
        assert_eq!(pool.num_groups(), 2);
    }

    #[test]
    fn grouped_pool_computes_correctly_and_counts_cross_steals() {
        let pool = Pool::new_grouped(4, 2);
        let total = pool.install(|| {
            parallel_reduce(
                100_000,
                64,
                0u64,
                &|lo, hi| (lo..hi).map(|i| i as u64).sum(),
                &|a, b| a + b,
            )
        });
        assert_eq!(total, 99_999u64 * 100_000 / 2);
        let stats = pool.stats();
        assert_eq!(stats.num_groups, 2);
        let t = stats.total();
        assert!(
            t.cross_steals <= t.steals,
            "cross-group steals are a subset of steals"
        );
        // Accounting invariant holds under grouped stealing too.
        assert_eq!(t.jobs_found(), t.jobs_executed);
    }

    #[test]
    fn single_group_pool_reports_no_cross_steals() {
        let pool = Pool::new_grouped(4, 1);
        pool.install(|| {
            parallel_for(50_000, |i| {
                std::hint::black_box(i);
            })
        });
        let t = pool.stats().total();
        assert_eq!(t.cross_steals, 0, "one group has no boundary to cross");
    }

    #[test]
    fn current_num_threads_reports_enclosing_pool() {
        let pool = Pool::new(3);
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn live_workers_quiescent_and_inside_install() {
        let pool = Pool::new(3);
        assert_eq!(pool.live_workers(), 3);
        // From inside install, the executing worker excludes itself.
        assert_eq!(pool.install(|| pool.live_workers()), 3);
        assert_eq!(pool.install(current_live_workers), 3);
        // Still quiescent afterwards.
        assert_eq!(pool.live_workers(), 3);
    }

    #[test]
    fn live_workers_sees_busy_peers() {
        let pool = Pool::new(2);
        let started = std::sync::Arc::new(AtomicUsize::new(0));
        let release = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let (started2, release2) = (started.clone(), release.clone());
            let pool_ref = &pool;
            s.spawn(move || {
                pool_ref.install(|| {
                    started2.store(1, Ordering::SeqCst);
                    while release2.load(Ordering::SeqCst) == 0 {
                        std::hint::spin_loop();
                    }
                });
            });
            while started.load(Ordering::SeqCst) == 0 {
                std::hint::spin_loop();
            }
            // One worker is pinned inside the spinning job; from this
            // external (non-worker) thread it must show up as busy.
            assert_eq!(pool.live_workers(), 1);
            release.store(1, Ordering::SeqCst);
        });
        // The gauge clears just *after* install's latch is set, so poll
        // briefly rather than assert instantly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.live_workers() != 2 {
            assert!(std::time::Instant::now() < deadline, "gauge never cleared");
            std::hint::spin_loop();
        }
    }
}

/// Run three closures, potentially in parallel.
pub fn join3<A, B, C, RA, RB, RC>(a: A, b: B, c: C) -> (RA, RB, RC)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    C: FnOnce() -> RC + Send,
    RA: Send,
    RB: Send,
    RC: Send,
{
    let (ra, (rb, rc)) = join(a, || join(b, c));
    (ra, rb, rc)
}

/// Run four closures, potentially in parallel.
pub fn join4<A, B, C, D, RA, RB, RC, RD>(a: A, b: B, c: C, d: D) -> (RA, RB, RC, RD)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    C: FnOnce() -> RC + Send,
    D: FnOnce() -> RD + Send,
    RA: Send,
    RB: Send,
    RC: Send,
    RD: Send,
{
    let ((ra, rb), (rc, rd)) = join(|| join(a, b), || join(c, d));
    (ra, rb, rc, rd)
}

/// Run a batch of heterogeneous closures in parallel (divide-and-conquer
/// over the batch), returning their results in order. Each closure runs
/// exactly once; the batch is the unit of load balancing, so closures of
/// very different costs still spread across workers.
pub fn join_all<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    fn rec<T, F>(mut tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        match tasks.len() {
            0 => Vec::new(),
            1 => vec![(tasks.pop().unwrap())()],
            n => {
                let right = tasks.split_off(n / 2);
                let (mut left, right) = join(|| rec(tasks), || rec(right));
                left.extend(right);
                left
            }
        }
    }
    rec(tasks)
}

#[cfg(test)]
mod join_all_tests {
    use super::*;

    #[test]
    fn join3_and_join4_order() {
        let pool = Pool::new(2);
        let (a, b, c) = pool.install(|| join3(|| 1, || "two", || 3.0));
        assert_eq!((a, b, c), (1, "two", 3.0));
        let (w, x, y, z) = pool.install(|| join4(|| 1, || 2, || 3, || 4));
        assert_eq!((w, x, y, z), (1, 2, 3, 4));
    }

    #[test]
    fn join_all_preserves_order() {
        let pool = Pool::new(4);
        let tasks: Vec<_> = (0..100)
            .map(|i| move || i * i)
            .collect();
        let results = pool.install(|| join_all(tasks));
        assert!(results.iter().enumerate().all(|(i, &r)| r == i * i));
    }

    #[test]
    fn join_all_empty_and_single() {
        let empty: Vec<fn() -> i32> = vec![];
        assert!(join_all(empty).is_empty());
        assert_eq!(join_all(vec![|| 42]), vec![42]);
    }

    #[test]
    fn join_all_uneven_costs() {
        let pool = Pool::new(3);
        let tasks: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    // Cost varies 1000x across tasks.
                    let spins = if i % 7 == 0 { 100_000 } else { 100 };
                    (0..spins).map(|k| k as u64).sum::<u64>()
                }
            })
            .collect();
        let results = pool.install(|| join_all(tasks));
        assert_eq!(results.len(), 32);
    }
}
