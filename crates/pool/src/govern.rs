//! Resource governance: deadlines and memory budgets for pipeline runs.
//!
//! A [`Budget`] bounds one region of work in wall-clock time and/or
//! charged heap bytes. [`run_governed`] installs a governed
//! [`CancelToken`] around a closure: a lazy global
//! watchdog thread cancels the token when the deadline passes, and
//! allocation sites charge bytes via [`try_charge`] /
//! [`charge_or_abort`], cancelling the token when the memory budget is
//! exhausted. Either way the loop primitives stop at their next block
//! boundary (or within one poll chunk inside a long sequential block —
//! see [`PollTicker`](crate::cancel::PollTicker)), partial buffers are
//! reclaimed by their drop guards, and the caller gets
//! `Err(Exceeded::Deadline)` or `Err(Exceeded::Memory)` instead of a
//! partial result.
//!
//! Governance composes with the existing cancellation protocol rather
//! than replacing it: tripping a budget is exactly a cancellation whose
//! *cause* is recorded on the shared governance context, and
//! [`run_governed`] classifies the resulting [`Cancelled`] sentinel at
//! the join point.
//!
//! [`Cancelled`]: crate::cancel::Cancelled

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::cancel::{self, CancelToken};

/// Resource bounds for one governed run. Both limits are optional; an
/// unlimited budget makes [`run_governed`] equivalent to
/// [`with_token`](crate::with_token) with a fresh token.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Absolute wall-clock instant after which the run is cancelled and
    /// reported as [`Exceeded::Deadline`].
    pub deadline: Option<Instant>,
    /// Maximum heap bytes the run may *charge* (cumulative across the
    /// run's materializations; freed buffers are not refunded). Charged
    /// allocations past this limit cancel the run, which is reported as
    /// [`Exceeded::Memory`].
    pub mem_bytes: Option<usize>,
}

impl Budget {
    /// A budget with no limits.
    pub const fn unlimited() -> Budget {
        Budget {
            deadline: None,
            mem_bytes: None,
        }
    }

    /// Set the deadline to `after` from now.
    pub fn with_deadline(mut self, after: Duration) -> Budget {
        self.deadline = Some(Instant::now() + after);
        self
    }

    /// Set the deadline to the absolute instant `at`.
    pub fn deadline_at(mut self, at: Instant) -> Budget {
        self.deadline = Some(at);
        self
    }

    /// Set the memory budget to `bytes` charged heap bytes.
    pub fn with_mem_bytes(mut self, bytes: usize) -> Budget {
        self.mem_bytes = Some(bytes);
        self
    }
}

/// Why a governed run was cut short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exceeded {
    /// The wall-clock deadline passed before the run completed.
    Deadline,
    /// The run tried to charge more heap bytes than its budget allows.
    Memory,
}

impl std::fmt::Display for Exceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exceeded::Deadline => write!(f, "deadline exceeded"),
            Exceeded::Memory => write!(f, "memory budget exceeded"),
        }
    }
}

impl std::error::Error for Exceeded {}

/// Shared cause-of-cancellation record for one governed run. Hangs off
/// the governed token (and all its descendants), so any thread holding
/// the ambient token can charge memory against the run.
#[derive(Debug)]
pub(crate) struct GovernCtx {
    mem_limit: Option<usize>,
    mem_charged: AtomicUsize,
    mem_hit: AtomicBool,
    deadline_hit: AtomicBool,
}

impl GovernCtx {
    fn new(mem_limit: Option<usize>) -> GovernCtx {
        GovernCtx {
            mem_limit,
            mem_charged: AtomicUsize::new(0),
            mem_hit: AtomicBool::new(false),
            deadline_hit: AtomicBool::new(false),
        }
    }

    fn mem_hit(&self) -> bool {
        self.mem_hit.load(Ordering::Acquire)
    }

    fn deadline_hit(&self) -> bool {
        self.deadline_hit.load(Ordering::Acquire)
    }

    fn note_deadline(&self) {
        if !self.deadline_hit.swap(true, Ordering::AcqRel) {
            DEADLINE_TRIPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn note_mem(&self) {
        if !self.mem_hit.swap(true, Ordering::AcqRel) {
            MEM_TRIPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge `bytes` against the budget; `Err(Exceeded::Memory)` once
    /// the cumulative charge passes the limit.
    fn charge(&self, bytes: usize) -> Result<(), Exceeded> {
        let total = self
            .mem_charged
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        match self.mem_limit {
            Some(limit) if total > limit => Err(Exceeded::Memory),
            _ => Ok(()),
        }
    }
}

/// Process-wide counts of budget trips, exported by benchmark harnesses
/// (soak job) alongside the pool's shed/respawn counters.
static DEADLINE_TRIPS: AtomicU64 = AtomicU64::new(0);
static MEM_TRIPS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide governance trip counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TripCounts {
    /// Governed runs cut short by their deadline.
    pub deadline: u64,
    /// Governed runs cut short by their memory budget.
    pub memory: u64,
}

/// Snapshot the process-wide counts of governed runs that tripped a
/// deadline or a memory budget (cumulative since process start).
pub fn trip_counts() -> TripCounts {
    TripCounts {
        deadline: DEADLINE_TRIPS.load(Ordering::Relaxed),
        memory: MEM_TRIPS.load(Ordering::Relaxed),
    }
}

/// Charge `bytes` of imminent heap allocation against the ambient
/// governed run's memory budget.
///
/// No-op `Ok(())` when the current thread is not inside a governed run
/// or the run has no memory limit. On exhaustion the governed token is
/// cancelled (so sibling blocks stop at their next boundary) and
/// `Err(Exceeded::Memory)` is returned; the caller decides whether to
/// propagate an error or abandon the region (see [`charge_or_abort`]).
pub fn try_charge(bytes: usize) -> Result<(), Exceeded> {
    let Some(token) = cancel::current_token() else {
        return Ok(());
    };
    let Some(ctx) = token.govern_ctx() else {
        return Ok(());
    };
    match ctx.charge(bytes) {
        Ok(()) => Ok(()),
        Err(e) => {
            ctx.note_mem();
            token.cancel();
            Err(e)
        }
    }
}

/// Record a *real* allocator failure (`try_reserve` returned an error)
/// against the ambient governed run.
///
/// Returns `true` when a governed run absorbed the failure — its token
/// is cancelled and the caller should abandon the region (the enclosing
/// [`run_governed`] reports `Err(Exceeded::Memory)`). Returns `false`
/// when no governance is in effect; the caller falls back to panicking,
/// as an ungoverned out-of-memory always did.
pub fn note_alloc_failure() -> bool {
    let Some(token) = cancel::current_token() else {
        return false;
    };
    let Some(ctx) = token.govern_ctx() else {
        return false;
    };
    ctx.note_mem();
    token.cancel();
    true
}

/// [`try_charge`], abandoning the region with the
/// [`Cancelled`](crate::cancel::Cancelled) sentinel when the budget is
/// exhausted. The hook used by infallible materializing consumers: the
/// sentinel unwinds through their drop guards (reclaiming partial
/// buffers) up to the enclosing [`run_governed`], which reports
/// `Err(Exceeded::Memory)`.
pub fn charge_or_abort(bytes: usize) {
    if try_charge(bytes).is_err() {
        cancel::abort_region();
    }
}

/// One registered deadline, waiting on the watchdog thread.
struct WatchdogEntry {
    id: u64,
    deadline: Instant,
    ctx: Arc<GovernCtx>,
    token: CancelToken,
}

struct Watchdog {
    entries: Mutex<Vec<WatchdogEntry>>,
    cond: Condvar,
}

fn watchdog() -> &'static Watchdog {
    static WATCHDOG: OnceLock<&'static Watchdog> = OnceLock::new();
    WATCHDOG.get_or_init(|| {
        let dog: &'static Watchdog = Box::leak(Box::new(Watchdog {
            entries: Mutex::new(Vec::new()),
            cond: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("bds-govern-watchdog".into())
            .spawn(move || watchdog_main(dog))
            .expect("failed to spawn governance watchdog");
        dog
    })
}

fn watchdog_main(dog: &'static Watchdog) {
    let mut entries = dog.entries.lock();
    loop {
        let now = Instant::now();
        // Fire everything that is due, keep the rest.
        entries.retain(|e| {
            if e.deadline <= now {
                e.ctx.note_deadline();
                e.token.cancel();
                false
            } else {
                true
            }
        });
        match entries.iter().map(|e| e.deadline).min() {
            Some(next) => {
                let _ = dog
                    .cond
                    .wait_for(&mut entries, next.saturating_duration_since(Instant::now()));
            }
            None => dog.cond.wait(&mut entries),
        }
    }
}

/// RAII deregistration of a deadline from the watchdog.
struct DeadlineGuard {
    id: u64,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let dog = watchdog();
        let mut entries = dog.entries.lock();
        entries.retain(|e| e.id != self.id);
        // No need to wake the watchdog for a removal: it only ever
        // sleeps *longer* than necessary by one spurious wakeup.
    }
}

fn register_deadline(deadline: Instant, ctx: Arc<GovernCtx>, token: CancelToken) -> DeadlineGuard {
    static NEXT_ID: AtomicU64 = AtomicU64::new(0);
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let dog = watchdog();
    {
        let mut entries = dog.entries.lock();
        entries.push(WatchdogEntry {
            id,
            deadline,
            ctx,
            token,
        });
    }
    dog.cond.notify_all();
    DeadlineGuard { id }
}

/// Run `f` under `budget`: a governed [`CancelToken`]
/// is installed as the ambient token, the deadline (if any) is armed on
/// the global watchdog thread, and charged allocations (see
/// [`try_charge`]) count against the memory budget.
///
/// * If `f` completes without any of its work being skipped, its value
///   is returned — even when the deadline fired just after the last
///   block finished: a complete result is never discarded.
/// * If a budget tripped and work was skipped, `Err(Exceeded::…)` names
///   the cause. Materializing consumers reclaim their partial buffers
///   on the way out (drop guards); side-effecting consumers
///   (`for_each`) may have applied a prefix of their effects.
/// * Panics from `f` propagate unchanged; an enclosing cancelled region
///   is re-raised as the sentinel so the outer protocol handles it.
///
/// The token nests: inside an enclosing cancelled region the governed
/// region stops too, while a budget trip here never cancels the
/// enclosing region.
pub fn run_governed<R>(budget: Budget, f: impl FnOnce() -> R) -> Result<R, Exceeded> {
    let ctx = Arc::new(GovernCtx::new(budget.mem_bytes));
    let token = match cancel::current_token() {
        Some(parent) => parent.child_governed(Arc::clone(&ctx)),
        None => CancelToken::new_governed(Arc::clone(&ctx)),
    };
    let _deadline_guard = budget.deadline.map(|at| {
        if at <= Instant::now() {
            // Already expired: trip deterministically without a
            // watchdog round-trip.
            ctx.note_deadline();
            token.cancel();
            None
        } else {
            Some(register_deadline(at, Arc::clone(&ctx), token.clone()))
        }
    });
    let outcome = catch_unwind(AssertUnwindSafe(|| cancel::with_token(&token, f)));
    match outcome {
        Ok(value) => {
            if token.skipped_blocks() == 0 {
                return Ok(value);
            }
            // Work was skipped: the value is partial. Name the cause.
            if ctx.mem_hit() {
                Err(Exceeded::Memory)
            } else if ctx.deadline_hit() {
                Err(Exceeded::Deadline)
            } else {
                // Skips caused by an enclosing cancelled region:
                // abandon upwards, as an un-governed region would.
                cancel::abort_region()
            }
        }
        Err(payload) => {
            if !cancel::is_cancellation(&*payload) {
                resume_unwind(payload);
            }
            if ctx.mem_hit() {
                Err(Exceeded::Memory)
            } else if ctx.deadline_hit() {
                Err(Exceeded::Deadline)
            } else {
                // Sentinel raised on behalf of an enclosing region.
                resume_unwind(payload)
            }
        }
    }
}

/// The jittered backoff delay before retry `attempt + 1`: uniform in
/// `[d/2, d]` where `d = base * 2^attempt` ("equal jitter").
///
/// A fixed exponential schedule synchronizes concurrent retriers: every
/// caller shed by the same overload event sleeps the same `base`,
/// `2*base`, … and the whole herd thunders back at once, re-creating
/// the overload it is backing off from. Randomizing the upper half of
/// each delay keeps the exponential spacing (worst case unchanged,
/// mean `3/4` of the fixed schedule) while spreading retriers across
/// half a period.
///
/// On a *seeded* (deterministic) pool's worker thread the randomness is
/// that worker's jitter stream, derived from the pool seed like the
/// steal RNG — so a `BDS_CHECK_SEED` replay of a retried pipeline
/// sleeps the same jittered delays bit-for-bit. Everywhere else it is a
/// process-global Weyl sequence fed through SplitMix64 — race-tolerant
/// (one relaxed `fetch_add`), no seeding, and well distributed even
/// when many threads draw concurrently.
pub fn backoff_delay(attempt: usize, base: Duration) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let nanos = exp.as_nanos().min(u64::MAX as u128) as u64;
    if nanos < 2 {
        return exp;
    }
    let half = nanos / 2;
    let jitter = jitter_next() % (nanos - half + 1);
    Duration::from_nanos(half + jitter)
}

fn jitter_next() -> u64 {
    // Deterministic pools get a per-worker stream seeded from the pool
    // seed (replayable); everyone else shares the global Weyl stream.
    if let Some(worker) = crate::registry::WorkerThread::current() {
        if let Some(seeded) = worker.seeded_jitter_next() {
            return seeded;
        }
    }
    static STATE: AtomicU64 = AtomicU64::new(0x243F_6A88_85A3_08D3);
    crate::registry::splitmix64(STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
}

/// Retry `f` up to `attempts` times with jittered exponential backoff
/// (uniform in `[d/2, d]` for `d = base`, `2*base`, `4*base`, … — see
/// [`backoff_delay`]), returning the first `Ok` or the last `Err`.
///
/// The companion to [`run_governed`] for transient failures: a run shed
/// under overload or cut short by a deadline often succeeds on a calmer
/// retry, and the jitter keeps a crowd of shed callers from retrying in
/// lockstep. `f` receives the attempt index (0-based).
///
/// With `attempts == 1` this is exactly one call to `f` — no backoff
/// delay is computed (nothing would sleep on it) and no classification
/// work runs.
///
/// When every attempt fails, the *last* error is returned:
///
/// ```
/// use std::time::Duration;
/// // Three attempts, all failing: the error from attempt index 2 (the
/// // last) surfaces, after sleeping the jittered backoff twice.
/// let r: Result<(), usize> =
///     bds_pool::retry_with_backoff(3, Duration::ZERO, |attempt| Err(attempt));
/// assert_eq!(r, Err(2));
/// ```
///
/// # Panics
/// Panics if `attempts == 0`.
pub fn retry_with_backoff<T, E>(
    attempts: usize,
    base: Duration,
    mut f: impl FnMut(usize) -> Result<T, E>,
) -> Result<T, E> {
    assert!(attempts > 0, "retry_with_backoff needs at least one attempt");
    if attempts == 1 {
        // Single attempt: skip the retry machinery entirely rather
        // than compute a backoff delay that is never slept.
        return f(0);
    }
    let mut last_err = None;
    for attempt in 0..attempts {
        match f(attempt) {
            Ok(value) => return Ok(value),
            Err(e) => {
                last_err = Some(e);
                if attempt + 1 < attempts {
                    std::thread::sleep(backoff_delay(attempt, base));
                }
            }
        }
    }
    Err(last_err.expect("attempts > 0"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn unlimited_budget_passes_value_through() {
        let pool = Pool::new(2);
        let r = pool.install(|| run_governed(Budget::unlimited(), || 41 + 1));
        assert_eq!(r, Ok(42));
    }

    #[test]
    fn expired_deadline_trips_before_any_block() {
        let pool = Pool::new(2);
        let ran = AtomicUsize::new(0);
        let budget = Budget::default().deadline_at(Instant::now() - Duration::from_millis(1));
        let r = pool.install(|| {
            run_governed(budget, || {
                crate::apply(64, |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                7
            })
        });
        assert_eq!(r, Err(Exceeded::Deadline));
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn watchdog_cancels_a_running_loop() {
        let pool = Pool::new(2);
        let budget = Budget::default().with_deadline(Duration::from_millis(5));
        let started = Instant::now();
        let r = pool.install(|| {
            run_governed(budget, || {
                crate::apply(1 << 20, |_| {
                    std::hint::black_box((0..50).sum::<u64>());
                });
            })
        });
        assert_eq!(r, Err(Exceeded::Deadline));
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "cancellation must not take unboundedly long"
        );
    }

    #[test]
    fn memory_charge_trips_budget() {
        let pool = Pool::new(2);
        let budget = Budget::default().with_mem_bytes(1024);
        let r = pool.install(|| {
            run_governed(budget, || {
                charge_or_abort(512); // fits
                charge_or_abort(4096); // exceeds -> aborts
                unreachable!("charge past the budget must abort");
            })
        });
        assert_eq!(r, Err(Exceeded::Memory));
    }

    #[test]
    fn try_charge_without_governance_is_free() {
        assert_eq!(try_charge(usize::MAX), Ok(()));
    }

    #[test]
    fn complete_result_wins_a_deadline_race() {
        // Deadline armed but generous: the run completes first and the
        // value must come through even though a watchdog entry existed.
        let budget = Budget::default().with_deadline(Duration::from_secs(3600));
        assert_eq!(run_governed(budget, || "done"), Ok("done"));
    }

    #[test]
    fn retry_with_backoff_returns_first_success() {
        let r: Result<usize, &str> =
            retry_with_backoff(5, Duration::from_millis(1), |attempt| {
                if attempt < 2 {
                    Err("transient")
                } else {
                    Ok(attempt)
                }
            });
        assert_eq!(r, Ok(2));
    }

    #[test]
    fn retry_with_backoff_surfaces_last_error() {
        let tried = AtomicUsize::new(0);
        let r: Result<(), usize> = retry_with_backoff(3, Duration::from_millis(1), |attempt| {
            tried.fetch_add(1, Ordering::Relaxed);
            Err(attempt)
        });
        assert_eq!(r, Err(2));
        assert_eq!(tried.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_with_backoff_single_attempt_runs_once_without_backoff() {
        let tried = AtomicUsize::new(0);
        let started = Instant::now();
        // An enormous base would stall for minutes if the single-attempt
        // path touched the backoff schedule at all.
        let r: Result<(), &str> = retry_with_backoff(1, Duration::from_secs(3600), |_| {
            tried.fetch_add(1, Ordering::Relaxed);
            Err("fails")
        });
        assert_eq!(r, Err("fails"));
        assert_eq!(tried.load(Ordering::Relaxed), 1);
        assert!(started.elapsed() < Duration::from_secs(60));
        let ok: Result<u32, ()> = retry_with_backoff(1, Duration::from_secs(3600), |a| Ok(a as u32));
        assert_eq!(ok, Ok(0));
    }

    #[test]
    fn backoff_delay_stays_within_equal_jitter_bounds() {
        let base = Duration::from_millis(1);
        for attempt in 0..6usize {
            let full = base * (1u32 << attempt);
            for _ in 0..200 {
                let d = backoff_delay(attempt, base);
                assert!(d >= full / 2, "attempt {attempt}: {d:?} < {:?}", full / 2);
                assert!(d <= full, "attempt {attempt}: {d:?} > {full:?}");
            }
        }
    }

    #[test]
    fn backoff_delay_actually_jitters() {
        // 64 draws over a 0.5 ms window: collisions of all 64 values
        // would mean the jitter source is constant.
        let seen: std::collections::HashSet<Duration> =
            (0..64).map(|_| backoff_delay(0, Duration::from_millis(1))).collect();
        assert!(seen.len() > 1, "backoff delays are not jittered");
    }

    #[test]
    fn backoff_delay_zero_base_is_zero() {
        assert_eq!(backoff_delay(3, Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn trip_counts_increase_on_deadline_trip() {
        let before = trip_counts();
        let budget = Budget::default().deadline_at(Instant::now() - Duration::from_millis(1));
        let r = run_governed(budget, || {
            crate::apply(8, |_| {});
        });
        assert_eq!(r, Err(Exceeded::Deadline));
        assert!(trip_counts().deadline > before.deadline);
    }

    #[test]
    fn nested_budget_trip_stays_contained() {
        let pool = Pool::new(2);
        let r = pool.install(|| {
            run_governed(Budget::unlimited(), || {
                let inner = run_governed(Budget::default().with_mem_bytes(1), || {
                    charge_or_abort(1024);
                });
                assert_eq!(inner, Err(Exceeded::Memory));
                // The outer region is still healthy.
                let done = AtomicUsize::new(0);
                crate::apply(16, |_| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
                done.load(Ordering::Relaxed)
            })
        });
        assert_eq!(r, Ok(16));
    }
}
