//! Type-erased jobs that can live on the stack of a `join` caller.
//!
//! This is the classic fork-join trick (used by rayon-core and by the
//! ParlayLib scheduler the paper builds on): the right-hand side of a
//! `join` is wrapped in a [`StackJob`] allocated in the caller's stack
//! frame, and a fat-pointer-free [`JobRef`] to it is pushed onto the
//! worker's deque where other workers may steal it. The caller's frame is
//! guaranteed to outlive the job because `join` does not return until the
//! job's latch has been set.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

use crate::latch::Latch;

/// A type-erased pointer to a job plus the code to run it.
///
/// Invariant: each `JobRef` is executed **exactly once**, and the referent
/// outlives that execution.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

impl PartialEq for JobRef {
    fn eq(&self, other: &Self) -> bool {
        // Identity is the data pointer; comparing the code pointer too
        // would be redundant (one job, one exec fn) and function-pointer
        // comparison is not meaningful anyway.
        std::ptr::eq(self.data, other.data)
    }
}

impl Eq for JobRef {}

// SAFETY: a JobRef may be executed on any thread; the job types below only
// hand out their pointers under the exactly-once protocol, and their
// payloads are `Send`.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Assemble from raw parts (used by heap jobs in `scope`).
    ///
    /// SAFETY: `exec` must consume `data` exactly once, and the referent
    /// must outlive the execution.
    pub(crate) unsafe fn from_raw_parts(data: *const (), exec: unsafe fn(*const ())) -> JobRef {
        JobRef { data, exec }
    }

    /// Run the job. Caller asserts this is the unique execution.
    pub(crate) unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// A heap-allocated, self-owning job for fire-and-forget spawns
/// ([`crate::Pool::spawn`]): the closure is boxed, erased into a
/// [`JobRef`], and reclaimed (`Box::from_raw`) by whichever worker
/// executes it.
///
/// Unlike [`StackJob`] there is no latch and no result slot — the
/// closure communicates through whatever it captured. A panic that
/// escapes the closure unwinds the executing worker's main loop, which
/// the registry treats as a crash: the worker is respawned and the
/// incident counted in [`crate::PoolStats::respawns`]. Callers that
/// care should catch panics inside the closure.
pub(crate) struct HeapJob<F: FnOnce() + Send + 'static> {
    func: F,
}

impl<F: FnOnce() + Send + 'static> HeapJob<F> {
    pub(crate) fn new(func: F) -> Box<Self> {
        Box::new(HeapJob { func })
    }

    /// Erase into a [`JobRef`], transferring ownership of the box.
    ///
    /// SAFETY (caller): the returned job must be executed exactly once;
    /// the box leaks otherwise.
    pub(crate) unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef::from_raw_parts(Box::into_raw(self) as *const (), Self::execute_erased)
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let job = Box::from_raw(ptr as *mut Self);
        (job.func)();
    }
}

/// The result slot of a [`StackJob`]: not yet run, or finished with either
/// a value or a captured panic payload.
enum JobResult<R> {
    Pending,
    Ok(R),
    Panic(Box<dyn Any + Send>),
}

/// A job whose closure, result slot, and completion latch all live in the
/// stack frame of the code that created it.
pub(crate) struct StackJob<L: Latch, F, R> {
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch + Sync,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, latch: L) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// Create the type-erased handle.
    ///
    /// SAFETY: the caller must guarantee that `self` outlives the (unique)
    /// execution of the returned `JobRef`.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let func = (*this.func.get()).take().expect("job executed twice");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => JobResult::Ok(value),
            Err(payload) => JobResult::Panic(payload),
        };
        *this.result.get() = result;
        // The latch store is a release: after the owner observes it, the
        // result written above is visible. Nothing may touch `this` after
        // the latch is set — the owning frame is then free to return.
        this.latch.set();
    }

    /// Take the result after the latch has been observed set.
    ///
    /// SAFETY: only the owner may call this, exactly once, after `latch`
    /// is set (which synchronizes-with the executor's writes).
    pub(crate) unsafe fn into_result(self) -> R {
        match std::ptr::read(self.result.get()) {
            JobResult::Pending => unreachable!("latch set but result pending"),
            JobResult::Ok(value) => {
                // Prevent a double-drop of the result slot.
                std::mem::forget(self);
                value
            }
            JobResult::Panic(payload) => {
                std::mem::forget(self);
                panic::resume_unwind(payload)
            }
        }
    }

    /// Run the job inline on the owner's thread (it was never stolen).
    ///
    /// SAFETY: the `JobRef` handed out by `as_job_ref` must not also be
    /// executed; callers uphold this by only running inline after popping
    /// that very `JobRef` back off the local deque.
    pub(crate) unsafe fn run_inline(self) -> R {
        let func = (*self.func.get()).take().expect("job executed twice");
        func()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latch::SpinLatch;

    #[test]
    fn stack_job_execute_and_collect() {
        let job = StackJob::new(|| 21 * 2, SpinLatch::new());
        let r = unsafe { job.as_job_ref() };
        unsafe { r.execute() };
        assert!(job.latch().probe());
        assert_eq!(unsafe { job.into_result() }, 42);
    }

    #[test]
    fn stack_job_inline() {
        let job = StackJob::new(|| String::from("inline"), SpinLatch::new());
        assert_eq!(unsafe { job.run_inline() }, "inline");
    }

    #[test]
    fn stack_job_captures_panic() {
        let job: StackJob<_, _, ()> =
            StackJob::new(|| panic!("boom"), SpinLatch::new());
        let r = unsafe { job.as_job_ref() };
        unsafe { r.execute() };
        assert!(job.latch().probe());
        let unwound = panic::catch_unwind(AssertUnwindSafe(|| unsafe {
            job.into_result()
        }));
        assert!(unwound.is_err());
    }
}
