//! Per-worker scheduler statistics.
//!
//! Every worker owns one cache-line-padded `WorkerCounters` slot in the
//! registry and bumps it with `Relaxed` atomics from its own thread only,
//! so the counters cost a handful of uncontended fetch-adds per *job*
//! (a job is a whole block of a delayed sequence — thousands of element
//! operations), cheap enough to stay on in release builds.
//!
//! Snapshots are taken with [`crate::Pool::stats`] (or
//! [`crate::pool_stats`] for the ambient pool) and are internally
//! consistent only in quiescence; while work is in flight they are a
//! best-effort racy read, which is all a profiler needs.
//!
//! Accounting invariant (tested in `tests/stats.rs`): every job executed
//! by a worker was found exactly one way, so
//! `local_pops + injector_pops + steals == jobs_executed`
//! whenever the pool is quiescent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Padded, per-worker atomic counters (one slot per worker thread).
///
/// The 128-byte alignment keeps two workers' slots off one cache line
/// (64-byte lines, plus spatial prefetch pairing on x86).
#[repr(align(128))]
#[derive(Default)]
pub(crate) struct WorkerCounters {
    /// Jobs this worker found and ran through the scheduler
    /// (`find_work` → `execute`). Inline-run `join` fast paths are not
    /// scheduler events and are not counted.
    pub(crate) jobs_executed: AtomicU64,
    /// Successful pops from the worker's own LIFO deque inside
    /// `find_work`.
    pub(crate) local_pops: AtomicU64,
    /// Jobs taken from the external-submission injector queue.
    pub(crate) injector_pops: AtomicU64,
    /// Successful steals from a peer's deque.
    pub(crate) steals: AtomicU64,
    /// The subset of `steals` whose victim lives in a different
    /// placement group (see `BDS_NUMA_GROUPS` and
    /// [`crate::Pool::new_grouped`]): work that crossed a socket
    /// boundary. Zero on single-group pools.
    pub(crate) cross_steals: AtomicU64,
    /// Victim probes that came up empty (one per peer scanned without
    /// finding work; a full idle sweep over `P-1` peers adds `P-1`).
    pub(crate) failed_steals: AtomicU64,
    /// Times the worker gave up spinning and blocked on the sleep
    /// condvar.
    pub(crate) parks: AtomicU64,
    /// Parks that ended by notification (as opposed to the 1 ms timeout
    /// used as a lost-wakeup backstop).
    pub(crate) unparks: AtomicU64,
    /// Approximate nanoseconds spent blocked on the sleep condvar. This
    /// undercounts idleness (spinning in `find_work` is not included)
    /// but tracks the "worker had nothing to do" signal.
    pub(crate) idle_ns: AtomicU64,
    /// Main-loop iterations: bumped once per trip around the worker's
    /// top-level loop. A liveness signal — a worker whose heartbeat has
    /// stopped advancing is either wedged inside one job or dead.
    pub(crate) heartbeats: AtomicU64,
    /// Gauge, not a counter: 1 while the worker's top-level `main_loop`
    /// frame is inside `job.execute()`, 0 otherwise. Read by
    /// [`crate::Pool::live_workers`] to estimate how many workers are
    /// free for new work; deliberately excluded from [`snapshot`] and
    /// [`reset`](Self::reset) — it is instantaneous state, not an
    /// accumulated statistic.
    ///
    /// [`snapshot`]: Self::snapshot
    pub(crate) busy: AtomicU64,
}

impl WorkerCounters {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            local_pops: self.local_pops.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            cross_steals: self.cross_steals.load(Ordering::Relaxed),
            failed_steals: self.failed_steals.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
            idle_ns: self.idle_ns.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.jobs_executed.store(0, Ordering::Relaxed);
        self.local_pops.store(0, Ordering::Relaxed);
        self.injector_pops.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.cross_steals.store(0, Ordering::Relaxed);
        self.failed_steals.store(0, Ordering::Relaxed);
        self.parks.store(0, Ordering::Relaxed);
        self.unparks.store(0, Ordering::Relaxed);
        self.idle_ns.store(0, Ordering::Relaxed);
        self.heartbeats.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of one worker's scheduler counters; see `WorkerCounters`
/// field docs for what each number means.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs found and executed through the scheduler.
    pub jobs_executed: u64,
    /// Successful pops from the worker's own deque.
    pub local_pops: u64,
    /// Jobs taken from the injector (external submissions).
    pub injector_pops: u64,
    /// Successful steals from peers.
    pub steals: u64,
    /// Steals whose victim was in a different placement group
    /// (cross-socket traffic under NUMA grouping; zero on single-group
    /// pools). Always `<= steals`.
    pub cross_steals: u64,
    /// Empty victim probes while hunting for work.
    pub failed_steals: u64,
    /// Times the worker blocked on the sleep condvar.
    pub parks: u64,
    /// Parks ended by notification rather than timeout.
    pub unparks: u64,
    /// Approximate nanoseconds spent parked.
    pub idle_ns: u64,
    /// Main-loop iterations (liveness heartbeat).
    pub heartbeats: u64,
}

impl WorkerStats {
    /// Jobs acquired from any source; equals [`WorkerStats::jobs_executed`]
    /// in quiescence.
    pub fn jobs_found(&self) -> u64 {
        self.local_pops + self.injector_pops + self.steals
    }

    fn add(&mut self, other: &WorkerStats) {
        self.jobs_executed += other.jobs_executed;
        self.local_pops += other.local_pops;
        self.injector_pops += other.injector_pops;
        self.steals += other.steals;
        self.cross_steals += other.cross_steals;
        self.failed_steals += other.failed_steals;
        self.parks += other.parks;
        self.unparks += other.unparks;
        self.idle_ns += other.idle_ns;
        self.heartbeats += other.heartbeats;
    }

    fn saturating_sub(&self, other: &WorkerStats) -> WorkerStats {
        WorkerStats {
            jobs_executed: self.jobs_executed.saturating_sub(other.jobs_executed),
            local_pops: self.local_pops.saturating_sub(other.local_pops),
            injector_pops: self.injector_pops.saturating_sub(other.injector_pops),
            steals: self.steals.saturating_sub(other.steals),
            cross_steals: self.cross_steals.saturating_sub(other.cross_steals),
            failed_steals: self.failed_steals.saturating_sub(other.failed_steals),
            parks: self.parks.saturating_sub(other.parks),
            unparks: self.unparks.saturating_sub(other.unparks),
            idle_ns: self.idle_ns.saturating_sub(other.idle_ns),
            heartbeats: self.heartbeats.saturating_sub(other.heartbeats),
        }
    }
}

/// Per-tenant submission counters, shared between the registry (which
/// snapshots them into [`PoolStats::tenants`]) and the [`TenantSlot`]
/// handles a multi-tenant front-end increments through. All fields are
/// relaxed atomics: monotone counters, exact in quiescence.
#[derive(Debug, Default)]
pub(crate) struct TenantCounters {
    name: String,
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_breaker: AtomicU64,
    rejected_shutdown: AtomicU64,
    panicked: AtomicU64,
    exceeded: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    block_retries: AtomicU64,
}

impl TenantCounters {
    pub(crate) fn new(name: &str) -> TenantCounters {
        TenantCounters {
            name: name.to_string(),
            ..TenantCounters::default()
        }
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn snapshot(&self) -> TenantStats {
        TenantStats {
            name: self.name.clone(),
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_breaker: self.rejected_breaker.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            exceeded: self.exceeded.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            block_retries: self.block_retries.load(Ordering::Relaxed),
        }
    }
}

/// A cloneable handle to one tenant's counter slot in a pool's
/// statistics (see [`crate::Pool::tenant_slot`]). A multi-tenant
/// front-end calls the `note_*` methods at its admission and completion
/// points; the counts surface in [`PoolStats::tenants`].
#[derive(Debug, Clone)]
pub struct TenantSlot(Arc<TenantCounters>);

impl TenantSlot {
    pub(crate) fn new(counters: Arc<TenantCounters>) -> TenantSlot {
        TenantSlot(counters)
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        self.0.name()
    }

    /// A request was submitted (counted before any admission decision).
    pub fn note_submitted(&self) {
        WorkerCounters::bump(&self.0.submitted);
    }

    /// A request passed admission and was queued.
    pub fn note_admitted(&self) {
        WorkerCounters::bump(&self.0.admitted);
    }

    /// A response was delivered (success, budget trip, or panic — every
    /// admitted request is counted here exactly once when it resolves).
    pub fn note_completed(&self) {
        WorkerCounters::bump(&self.0.completed);
    }

    /// A submission was refused because the tenant's queue was full.
    pub fn note_rejected_queue_full(&self) {
        WorkerCounters::bump(&self.0.rejected_queue_full);
    }

    /// A submission was refused because its deadline could not be met.
    pub fn note_rejected_deadline(&self) {
        WorkerCounters::bump(&self.0.rejected_deadline);
    }

    /// A submission was refused by the tenant's circuit breaker.
    pub fn note_rejected_breaker(&self) {
        WorkerCounters::bump(&self.0.rejected_breaker);
    }

    /// A submission was refused because the front-end is shutting down.
    pub fn note_rejected_shutdown(&self) {
        WorkerCounters::bump(&self.0.rejected_shutdown);
    }

    /// An admitted request's closure panicked (also counted in
    /// `completed`: the panic was delivered as a typed response).
    pub fn note_panicked(&self) {
        WorkerCounters::bump(&self.0.panicked);
    }

    /// An admitted request tripped its budget (also counted in
    /// `completed`).
    pub fn note_exceeded(&self) {
        WorkerCounters::bump(&self.0.exceeded);
    }

    /// A pipeline submission reused a cached execution plan for its
    /// shape (no optimizer run was needed).
    pub fn note_plan_hit(&self) {
        WorkerCounters::bump(&self.0.plan_hits);
    }

    /// A pipeline submission had no cached plan for its shape and paid
    /// for an optimizer run.
    pub fn note_plan_miss(&self) {
        WorkerCounters::bump(&self.0.plan_misses);
    }

    /// A request's run re-executed `n` blocks after transient faults
    /// (see [`crate::run_recovered_counting`]). Distinct from
    /// [`note_panicked`](Self::note_panicked): a recovered block never
    /// strikes the tenant's circuit breaker.
    pub fn note_block_retries(&self, n: u64) {
        if n > 0 {
            self.0.block_retries.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Snapshot of one tenant's counters; see [`TenantSlot`] for when each
/// is incremented.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name (the key: stable across snapshots).
    pub name: String,
    /// Requests submitted, before any admission decision.
    pub submitted: u64,
    /// Requests that passed admission and were queued.
    pub admitted: u64,
    /// Responses delivered (one per admitted request, eventually).
    pub completed: u64,
    /// Submissions refused: tenant queue full.
    pub rejected_queue_full: u64,
    /// Submissions refused: deadline unmeetable at admission time.
    pub rejected_deadline: u64,
    /// Submissions refused: circuit breaker open.
    pub rejected_breaker: u64,
    /// Submissions refused: front-end shutting down.
    pub rejected_shutdown: u64,
    /// Admitted requests whose closure panicked.
    pub panicked: u64,
    /// Admitted requests that tripped their budget.
    pub exceeded: u64,
    /// Pipeline submissions that reused a cached execution plan.
    pub plan_hits: u64,
    /// Pipeline submissions that paid for an optimizer run.
    pub plan_misses: u64,
    /// Blocks re-executed after transient faults across this tenant's
    /// requests. Distinct from `panicked`: recovered blocks never
    /// strike the breaker.
    pub block_retries: u64,
}

impl TenantStats {
    /// Fraction of plan lookups served from the cache, or `None` if the
    /// tenant never looked a plan up.
    pub fn plan_hit_rate(&self) -> Option<f64> {
        let total = self.plan_hits + self.plan_misses;
        (total > 0).then(|| self.plan_hits as f64 / total as f64)
    }

    /// Submissions refused for any reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full
            + self.rejected_deadline
            + self.rejected_breaker
            + self.rejected_shutdown
    }

    fn saturating_sub(&self, other: &TenantStats) -> TenantStats {
        TenantStats {
            name: self.name.clone(),
            submitted: self.submitted.saturating_sub(other.submitted),
            admitted: self.admitted.saturating_sub(other.admitted),
            completed: self.completed.saturating_sub(other.completed),
            rejected_queue_full: self
                .rejected_queue_full
                .saturating_sub(other.rejected_queue_full),
            rejected_deadline: self
                .rejected_deadline
                .saturating_sub(other.rejected_deadline),
            rejected_breaker: self
                .rejected_breaker
                .saturating_sub(other.rejected_breaker),
            rejected_shutdown: self
                .rejected_shutdown
                .saturating_sub(other.rejected_shutdown),
            panicked: self.panicked.saturating_sub(other.panicked),
            exceeded: self.exceeded.saturating_sub(other.exceeded),
            plan_hits: self.plan_hits.saturating_sub(other.plan_hits),
            plan_misses: self.plan_misses.saturating_sub(other.plan_misses),
            block_retries: self.block_retries.saturating_sub(other.block_retries),
        }
    }
}

/// Snapshot of a whole pool's scheduler counters, one entry per worker,
/// plus pool-level resilience counters.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Per-worker snapshots, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Number of placement groups the pool's workers are partitioned
    /// into (1 unless NUMA grouping is active; see
    /// [`crate::Pool::new_grouped`] and `BDS_NUMA_GROUPS`).
    pub num_groups: usize,
    /// Workers that crashed (unexpected unwind out of the main loop —
    /// e.g. via the crash-injection hook) and were respawned by the
    /// registry. Cumulative over the pool's lifetime; not cleared by
    /// [`crate::Pool::reset_stats`].
    pub respawns: u64,
    /// `install` calls the pool declined to queue and degraded to
    /// sequential in-caller execution instead (admission control /
    /// saturation shedding). Cumulative over the pool's lifetime.
    pub sheds: u64,
    /// Block-recovery counters (retries, quarantines, recovered runs).
    /// Process-wide, like the governance trip counters: recovery state
    /// lives on tokens, not pools, so the snapshot reports the
    /// process's cumulative [`crate::recovery_counts`].
    pub recovery: crate::recovery::RecoveryCounts,
    /// Per-tenant submission counters, one entry per slot created with
    /// [`crate::Pool::tenant_slot`], in creation order. Empty unless a
    /// multi-tenant front-end is using the pool.
    pub tenants: Vec<TenantStats>,
}

impl PoolStats {
    /// Number of workers in the snapshotted pool.
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Sum of all workers' counters.
    pub fn total(&self) -> WorkerStats {
        let mut acc = WorkerStats::default();
        for w in &self.workers {
            acc.add(w);
        }
        acc
    }

    /// Per-field difference `self - baseline` (saturating), for measuring
    /// one region of interest between two snapshots of the same pool.
    pub fn since(&self, baseline: &PoolStats) -> PoolStats {
        let workers = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| match baseline.workers.get(i) {
                Some(b) => w.saturating_sub(b),
                None => *w,
            })
            .collect();
        let tenants = self
            .tenants
            .iter()
            .map(|t| match baseline.tenants.iter().find(|b| b.name == t.name) {
                Some(b) => t.saturating_sub(b),
                None => t.clone(),
            })
            .collect();
        PoolStats {
            workers,
            num_groups: self.num_groups,
            respawns: self.respawns.saturating_sub(baseline.respawns),
            sheds: self.sheds.saturating_sub(baseline.sheds),
            recovery: self.recovery.saturating_sub(&baseline.recovery),
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_and_since_subtracts() {
        let w = |j, s| WorkerStats {
            jobs_executed: j,
            steals: s,
            ..Default::default()
        };
        let before = PoolStats {
            workers: vec![w(1, 0), w(2, 1)],
            ..Default::default()
        };
        let after = PoolStats {
            workers: vec![w(5, 2), w(7, 3)],
            respawns: 1,
            sheds: 2,
            ..Default::default()
        };
        assert_eq!(after.total().jobs_executed, 12);
        let d = after.since(&before);
        assert_eq!(d.total().jobs_executed, 9);
        assert_eq!(d.total().steals, 4);
        assert_eq!(d.num_threads(), 2);
        assert_eq!(d.respawns, 1);
        assert_eq!(d.sheds, 2);
    }

    #[test]
    fn tenant_since_matches_by_name() {
        let t = |name: &str, submitted, completed| TenantStats {
            name: name.to_string(),
            submitted,
            completed,
            ..Default::default()
        };
        let before = PoolStats {
            tenants: vec![t("a", 10, 8)],
            ..Default::default()
        };
        let after = PoolStats {
            tenants: vec![t("a", 15, 12), t("b", 3, 3)],
            ..Default::default()
        };
        let d = after.since(&before);
        assert_eq!(d.tenants[0], t("a", 5, 4));
        // "b" appeared after the baseline: reported whole.
        assert_eq!(d.tenants[1], t("b", 3, 3));
    }

    #[test]
    fn tenant_rejected_sums_reasons() {
        let t = TenantStats {
            rejected_queue_full: 1,
            rejected_deadline: 2,
            rejected_breaker: 3,
            rejected_shutdown: 4,
            ..Default::default()
        };
        assert_eq!(t.rejected(), 10);
    }

    #[test]
    fn plan_counters_snapshot_and_rate() {
        let slot = TenantSlot::new(Arc::new(TenantCounters::new("t")));
        assert_eq!(slot.0.snapshot().plan_hit_rate(), None);
        slot.note_plan_miss();
        slot.note_plan_hit();
        slot.note_plan_hit();
        slot.note_plan_hit();
        let snap = slot.0.snapshot();
        assert_eq!(snap.plan_hits, 3);
        assert_eq!(snap.plan_misses, 1);
        assert_eq!(snap.plan_hit_rate(), Some(0.75));
        let diff = snap.saturating_sub(&snap);
        assert_eq!(diff.plan_hits, 0);
        assert_eq!(diff.plan_misses, 0);
    }

    #[test]
    fn jobs_found_sums_sources() {
        let s = WorkerStats {
            local_pops: 3,
            injector_pops: 2,
            steals: 5,
            ..Default::default()
        };
        assert_eq!(s.jobs_found(), 10);
    }
}
