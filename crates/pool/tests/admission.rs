//! Admission-control accounting under concurrency and panics.
//!
//! Two properties are pinned here:
//!
//! * **Conservation at the cap boundary.** With many threads racing
//!   `install` against a small `max_inflight` cap, every submission is
//!   either admitted or shed — `admitted + shed == submissions`, the
//!   pool's `sheds` counter agrees with the callers' own observations,
//!   and the strict (CAS) cap means the number of *concurrently
//!   admitted* closures never exceeds the cap.
//! * **Panic-safe gauges.** Both the admitted and the degraded (shed)
//!   execution path hold their in-flight gauge with an RAII guard, so a
//!   panicking closure leaves both gauges at zero — the bug this guards
//!   against is a shed submission leaking its slot on unwind and
//!   eventually wedging admission shut.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use bds_pool::Pool;

/// Race `threads * per_thread` installs against a cap of `cap` on a
/// pool of `width` workers, and check the conservation law.
fn race_at_cap(width: usize, cap: usize) {
    let pool = Pool::with_max_inflight(width, cap);
    let threads = 8;
    let per_thread = 40;

    let admitted = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let concurrent = AtomicUsize::new(0);
    let high_water = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                barrier.wait();
                for _ in 0..per_thread {
                    pool.install(|| {
                        if bds_pool::running_degraded() {
                            shed.fetch_add(1, Ordering::SeqCst);
                        } else {
                            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                            high_water.fetch_max(now, Ordering::SeqCst);
                            admitted.fetch_add(1, Ordering::SeqCst);
                            // Hold the slot briefly so racers pile up at
                            // the boundary.
                            std::thread::sleep(Duration::from_micros(50));
                            concurrent.fetch_sub(1, Ordering::SeqCst);
                        }
                    });
                }
            });
        }
    });

    let admitted = admitted.load(Ordering::SeqCst);
    let shed = shed.load(Ordering::SeqCst);
    let submissions = threads * per_thread;

    // Conservation: every submission took exactly one path.
    assert_eq!(
        admitted + shed,
        submissions,
        "admitted ({admitted}) + shed ({shed}) != submissions ({submissions})"
    );
    // The pool's own shed counter agrees with what the closures saw.
    assert_eq!(pool.stats().sheds, shed as u64, "sheds counter disagrees");
    // The CAS cap is strict: concurrently admitted closures never
    // exceeded it.
    assert!(
        high_water.load(Ordering::SeqCst) <= cap,
        "cap {cap} overshot: {} concurrent admitted closures",
        high_water.load(Ordering::SeqCst)
    );
    // Quiescent pool: both gauges are back to zero.
    assert_eq!(pool.inflight(), 0);
    assert_eq!(pool.degraded_inflight(), 0);
}

#[test]
fn admit_race_at_cap_width_2() {
    race_at_cap(2, 2);
}

#[test]
fn admit_race_at_cap_width_max() {
    let width = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);
    race_at_cap(width, 2);
}

#[test]
fn admit_race_at_cap_one() {
    // The tightest boundary: a single slot.
    race_at_cap(2, 1);
}

/// Park one install inside the pool so the (cap = 1) slot is taken,
/// then run `blocked` on another thread and return its result.
fn with_slot_held<R: Send>(
    pool: &Pool,
    blocked: impl FnOnce() -> R + Send,
) -> R {
    let hold = AtomicUsize::new(0);
    let release = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let (hold_ref, release_ref) = (&hold, &release);
        s.spawn(move || {
            pool.install(|| {
                hold_ref.store(1, Ordering::SeqCst);
                while release_ref.load(Ordering::SeqCst) == 0 {
                    std::hint::spin_loop();
                }
            });
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while hold.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "holder never started");
            std::hint::spin_loop();
        }
        let result = blocked();
        release.store(1, Ordering::SeqCst);
        result
    })
}

#[test]
fn shed_panic_decrements_degraded_inflight() {
    let pool = Pool::with_max_inflight(2, 1);
    with_slot_held(&pool, || {
        // The slot is taken: this install sheds, runs degraded, and
        // panics. The gauge must still come back to zero.
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                assert!(bds_pool::running_degraded(), "expected the shed path");
                panic!("degraded closure exploded");
            })
        }));
        assert!(unwound.is_err());
        assert_eq!(
            pool.degraded_inflight(),
            0,
            "shed path leaked its in-flight slot on panic"
        );
        assert_eq!(pool.stats().sheds, 1);
    });
    // After the holder finishes, the admitted gauge is balanced too.
    let deadline = Instant::now() + Duration::from_secs(10);
    while pool.inflight() != 0 {
        assert!(Instant::now() < deadline, "admitted gauge never cleared");
        std::hint::spin_loop();
    }
}

#[test]
fn admitted_panic_decrements_inflight() {
    let pool = Pool::with_max_inflight(2, 4);
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            assert!(!bds_pool::running_degraded());
            panic!("admitted closure exploded");
        })
    }));
    assert!(unwound.is_err());
    assert_eq!(pool.inflight(), 0, "admitted path leaked its slot on panic");
    assert_eq!(pool.degraded_inflight(), 0);
    // The pool is still usable.
    assert_eq!(pool.install(|| 5), 5);
}

#[test]
fn try_reserve_respects_cap_and_does_not_count_sheds() {
    let pool = Pool::with_max_inflight(2, 2);
    let a = pool.try_reserve().expect("slot 1");
    let b = pool.try_reserve().expect("slot 2");
    assert!(pool.try_reserve().is_none(), "cap must refuse a third slot");
    // A refused reservation is not a shed: the caller retries, it does
    // not degrade.
    assert_eq!(pool.stats().sheds, 0);
    assert_eq!(pool.inflight(), 2);
    drop(a);
    assert_eq!(pool.inflight(), 1);
    let c = pool.try_reserve().expect("slot freed by drop");
    drop(b);
    drop(c);
    assert_eq!(pool.inflight(), 0);
}

#[test]
fn reserve_and_install_share_the_cap() {
    let pool = Pool::with_max_inflight(2, 1);
    let token = pool.try_reserve().expect("the only slot");
    // The install sees a full cap and sheds.
    let degraded = pool.install(bds_pool::running_degraded);
    assert!(degraded, "install should shed while a reservation holds the slot");
    drop(token);
    let degraded = pool.install(bds_pool::running_degraded);
    assert!(!degraded, "slot released: install should be admitted again");
}

#[test]
fn spawned_jobs_run_and_wake_latches() {
    use bds_pool::{AsyncLatch, Latch};
    use std::sync::Arc;

    let pool = Pool::new(2);
    let hits = Arc::new(AtomicUsize::new(0));
    let latches: Vec<Arc<AsyncLatch>> =
        (0..64).map(|_| Arc::new(AsyncLatch::new())).collect();
    for latch in &latches {
        let latch = Arc::clone(latch);
        let hits = Arc::clone(&hits);
        pool.spawn(move || {
            hits.fetch_add(1, Ordering::SeqCst);
            latch.set();
        });
    }
    for latch in &latches {
        latch.wait();
    }
    assert_eq!(hits.load(Ordering::SeqCst), 64);
}

#[test]
fn spawned_jobs_left_at_drop_still_run() {
    use std::sync::Arc;

    // A 1-thread pool wedged by a blocking install cannot pick up the
    // spawn before drop; the teardown drain must run it instead of
    // leaking it.
    let ran = Arc::new(AtomicUsize::new(0));
    {
        let pool = Pool::new(1);
        let gate = Arc::new(AtomicUsize::new(0));
        let (gate2, ran2) = (Arc::clone(&gate), Arc::clone(&ran));
        std::thread::scope(|s| {
            s.spawn({
                let pool = &pool;
                let gate = Arc::clone(&gate);
                move || {
                    pool.install(move || {
                        gate.store(1, Ordering::SeqCst);
                        // Wedge until the spawn below is queued.
                        while gate.load(Ordering::SeqCst) != 2 {
                            std::hint::spin_loop();
                        }
                    });
                }
            });
            while gate2.load(Ordering::SeqCst) == 0 {
                std::hint::spin_loop();
            }
            pool.spawn(move || {
                ran2.fetch_add(1, Ordering::SeqCst);
            });
            gate2.store(2, Ordering::SeqCst);
        });
        // Pool drops here. The spawn may have been picked up by the
        // worker after the install finished, or left for the teardown
        // drain — either way it must run exactly once.
    }
    assert_eq!(ran.load(Ordering::SeqCst), 1);
}
