//! Scheduler-statistics invariants: acquisition counts balance executed
//! jobs, resets isolate regions of interest, and cancellation does not
//! corrupt the accounting.

use std::sync::atomic::{AtomicUsize, Ordering};

use bds_pool::{apply, apply_cancellable, Pool};

/// Enough fine-grained jobs that every worker of a small pool must both
/// execute work and probe peers.
fn churn(pool: &Pool, n: usize) {
    pool.install(|| {
        apply(n, |_| {
            std::hint::black_box((0..500u64).sum::<u64>());
        })
    });
}

#[test]
fn acquisitions_balance_jobs_executed() {
    let pool = Pool::new(4);
    churn(&pool, 3000);
    let total = pool.stats().total();
    assert!(total.jobs_executed > 0, "no jobs recorded");
    assert_eq!(
        total.jobs_found(),
        total.jobs_executed,
        "local_pops + injector_pops + steals must equal jobs executed \
         in quiescence: {total:?}"
    );
}

#[test]
fn parallel_work_actually_steals() {
    let pool = Pool::new(4);
    churn(&pool, 5000);
    let total = pool.stats().total();
    // The root job is injected and split via join; peers can only get
    // work by stealing, so a multi-worker pool with thousands of tasks
    // must record steals.
    assert!(total.steals > 0, "expected steals: {total:?}");
    assert!(total.injector_pops >= 1, "install goes through the injector");
}

#[test]
fn per_worker_snapshots_cover_all_workers() {
    let pool = Pool::new(3);
    churn(&pool, 4000);
    let stats = pool.stats();
    assert_eq!(stats.num_threads(), 3);
    let busy = stats.workers.iter().filter(|w| w.jobs_executed > 0).count();
    assert!(busy >= 2, "work should spread: {:?}", stats.workers);
}

#[test]
fn reset_isolates_install_regions() {
    let pool = Pool::new(2);
    churn(&pool, 2000);
    let first = pool.stats().total();
    assert!(first.jobs_executed > 0);

    // Quiescent: install has returned, so all jobs are done. Reset and
    // verify a clean slate...
    pool.reset_stats();
    let zeroed = pool.stats().total();
    assert_eq!(zeroed.jobs_executed, 0, "reset must zero counters");
    assert_eq!(zeroed.jobs_found(), 0);

    // ...then a second install is attributed only to itself.
    churn(&pool, 100);
    let second = pool.stats().total();
    assert!(second.jobs_executed > 0);
    assert!(
        second.jobs_executed < first.jobs_executed,
        "second region ({} jobs) must not inherit the first ({} jobs)",
        second.jobs_executed,
        first.jobs_executed
    );
    assert_eq!(second.jobs_found(), second.jobs_executed);
}

#[test]
fn stats_snapshot_delta_between_regions() {
    let pool = Pool::new(2);
    churn(&pool, 1000);
    let before = pool.stats();
    churn(&pool, 1000);
    let delta = pool.stats().since(&before).total();
    assert!(delta.jobs_executed > 0);
    assert_eq!(delta.jobs_found(), delta.jobs_executed);
}

#[test]
fn cancellation_does_not_corrupt_counters() {
    let pool = Pool::new(4);
    let ran = AtomicUsize::new(0);
    let outcome = pool.install(|| {
        apply_cancellable(4000, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            std::hint::black_box((0..200u64).sum::<u64>());
            // The first index fails, cancelling the region: siblings stop
            // at their next chunk boundary and skipped chunks never run.
            if i == 0 {
                Err("boom")
            } else {
                Ok(())
            }
        })
    });
    assert_eq!(outcome, Err("boom"));
    let total = pool.stats().total();
    assert!(
        total.jobs_executed > 0,
        "the cancelled region still executed its early jobs"
    );
    assert_eq!(
        total.jobs_found(),
        total.jobs_executed,
        "cancellation must not break the accounting: {total:?}"
    );
    // Pool stays healthy and keeps counting after cancellation.
    churn(&pool, 500);
    let after = pool.stats().total();
    assert!(after.jobs_executed > total.jobs_executed);
    assert_eq!(after.jobs_found(), after.jobs_executed);
}

#[test]
fn idle_pool_accumulates_park_time() {
    let pool = Pool::new(2);
    // Give the workers a moment with nothing to do.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let total = pool.stats().total();
    assert!(total.parks > 0, "idle workers must park: {total:?}");
    assert!(total.idle_ns > 0, "parked time must accumulate");
}
