//! Self-healing and overload-degradation tests: crashed workers are
//! respawned (and counted), shed installs run degraded but correct.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use bds_pool::Pool;

/// Serializes the tests in this binary: they read process-global state
/// (`BDS_MAX_INFLIGHT` is sampled at pool creation).
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// How many distinct OS threads run the blocks of one sizable `apply`.
fn threads_used(pool: &Pool) -> usize {
    let seen = Mutex::new(std::collections::HashSet::new());
    pool.install(|| {
        bds_pool::apply(4096, |_| {
            std::hint::black_box((0..200).sum::<u64>());
            seen.lock().unwrap().insert(std::thread::current().id());
        })
    });
    let n = seen.lock().unwrap().len();
    n
}

#[test]
fn crashed_worker_is_respawned_and_parallelism_recovers() {
    let _serial = serial();
    let pool = Pool::new(2);
    assert_eq!(pool.stats().respawns, 0);

    // Healthy warm-up.
    let count = AtomicUsize::new(0);
    pool.install(|| {
        bds_pool::apply(100, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        })
    });
    assert_eq!(count.load(Ordering::Relaxed), 100);

    pool.inject_worker_crash(0);
    wait_for(|| pool.stats().respawns == 1, "worker respawn");

    // The next run must complete, with both workers participating.
    wait_for(|| threads_used(&pool) == 2, "full parallelism after respawn");
    let count = AtomicUsize::new(0);
    pool.install(|| {
        bds_pool::apply(1000, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        })
    });
    assert_eq!(count.load(Ordering::Relaxed), 1000);
    assert_eq!(pool.stats().respawns, 1);
}

#[test]
fn repeated_crashes_keep_the_pool_alive() {
    let _serial = serial();
    let pool = Pool::new(2);
    for round in 1..=3u64 {
        pool.inject_worker_crash((round as usize) % 2);
        wait_for(|| pool.stats().respawns == round, "worker respawn");
        let total: u64 = pool.install(|| {
            bds_pool::parallel_reduce(
                10_000,
                64,
                0u64,
                &|lo, hi| (lo..hi).map(|i| i as u64).sum(),
                &|a, b| a + b,
            )
        });
        assert_eq!(total, 9_999u64 * 10_000 / 2);
    }
    // Drop with respawned workers outstanding must shut down cleanly.
}

#[test]
fn crash_mid_run_still_completes_the_run() {
    let _serial = serial();
    let pool = Pool::new(2);
    let count = AtomicUsize::new(0);
    pool.install(|| {
        bds_pool::apply(20_000, |i| {
            if i == 64 {
                // Crash a worker while blocks are still queued. The
                // other worker (or the respawned one) finishes the job:
                // the crashing worker dies *between* jobs, never while
                // holding one.
                pool.inject_worker_crash(1);
            }
            std::hint::black_box((0..100).sum::<u64>());
            count.fetch_add(1, Ordering::Relaxed);
        })
    });
    assert_eq!(count.load(Ordering::Relaxed), 20_000);
    wait_for(|| pool.stats().respawns == 1, "worker respawn");
}

#[test]
fn crash_during_block_retry_still_converges() {
    let _serial = serial();
    let pool = Pool::new(2);
    let before = bds_pool::recovery_counts();

    // One block panics on its first attempt; its retry (attempt 2)
    // crashes a worker before computing normally. The crash and the
    // retry must both resolve independently: the respawned worker
    // rejoins, the retried block lands in its reserved region, and the
    // job's value is bit-equal to the fault-free sum.
    let fired = AtomicUsize::new(0);
    let want: u64 = (0..4096u64).sum();
    let got = pool.install(|| {
        bds_pool::run_recovered(bds_pool::RetryPolicy::default(), || {
            bds_pool::parallel_reduce(
                4096,
                64,
                0u64,
                &|lo, hi| {
                    bds_pool::recover_block(lo / 64, || {
                        if lo == 1024 {
                            match fired.fetch_add(1, Ordering::SeqCst) {
                                0 => panic!("resilience: injected transient block fault"),
                                1 => pool.inject_worker_crash(1),
                                _ => {}
                            }
                        }
                        (lo..hi).map(|i| i as u64).sum()
                    })
                },
                &|a, b| a + b,
            )
        })
    });
    assert_eq!(got, Ok(want));
    assert_eq!(fired.load(Ordering::SeqCst), 2, "fault fired, retry ran once");

    let d = bds_pool::recovery_counts().saturating_sub(&before);
    assert!(d.block_retries >= 1, "retry must be counted: {d:?}");
    assert!(d.recovered_jobs >= 1, "salvaged job must be counted: {d:?}");
    assert_eq!(d.quarantines, 0, "transient fault must not quarantine: {d:?}");
    wait_for(|| pool.stats().respawns == 1, "worker respawn");

    // The pool stays healthy after the crash-during-retry episode.
    wait_for(|| threads_used(&pool) == 2, "full parallelism after respawn");
}

#[test]
fn heartbeats_advance() {
    let _serial = serial();
    let pool = Pool::new(2);
    pool.install(|| bds_pool::apply(64, |_| {}));
    let stats = pool.stats();
    assert!(
        stats.workers.iter().any(|w| w.heartbeats > 0),
        "at least one worker must have iterated its main loop: {stats:?}"
    );
}

#[test]
fn max_inflight_sheds_to_degraded_sequential_execution() {
    let _serial = serial();
    std::env::set_var("BDS_MAX_INFLIGHT", "1");
    let pool = Pool::new(2);
    std::env::remove_var("BDS_MAX_INFLIGHT");

    let occupied = std::sync::Arc::new(AtomicUsize::new(0));
    let release = std::sync::Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        let (occupied2, release2) = (occupied.clone(), release.clone());
        let pool_ref = &pool;
        s.spawn(move || {
            pool_ref.install(|| {
                occupied2.store(1, Ordering::SeqCst);
                while release2.load(Ordering::SeqCst) == 0 {
                    std::hint::spin_loop();
                }
            });
        });
        while occupied.load(Ordering::SeqCst) == 0 {
            std::hint::spin_loop();
        }

        // One install is in flight; the cap is 1, so this one is shed
        // and must run on *this* thread — degraded, still correct.
        let caller = std::thread::current().id();
        let total: u64 = pool.install(|| {
            assert_eq!(std::thread::current().id(), caller);
            bds_pool::parallel_reduce(
                100_000,
                64,
                0u64,
                &|lo, hi| (lo..hi).map(|i| i as u64).sum(),
                &|a, b| a + b,
            )
        });
        assert_eq!(total, 99_999u64 * 100_000 / 2);
        assert_eq!(pool.stats().sheds, 1);

        release.store(1, Ordering::SeqCst);
    });

    // Back under the cap: installs are admitted (and parallel) again.
    let count = AtomicUsize::new(0);
    pool.install(|| {
        bds_pool::apply(100, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        })
    });
    assert_eq!(count.load(Ordering::Relaxed), 100);
    assert_eq!(pool.stats().sheds, 1);
}

#[test]
fn degraded_mode_observes_cancellation() {
    let _serial = serial();
    std::env::set_var("BDS_MAX_INFLIGHT", "1");
    let pool = Pool::new(1);
    std::env::remove_var("BDS_MAX_INFLIGHT");

    let occupied = std::sync::Arc::new(AtomicUsize::new(0));
    let release = std::sync::Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        let (occupied2, release2) = (occupied.clone(), release.clone());
        let pool_ref = &pool;
        s.spawn(move || {
            pool_ref.install(|| {
                occupied2.store(1, Ordering::SeqCst);
                while release2.load(Ordering::SeqCst) == 0 {
                    std::hint::spin_loop();
                }
            });
        });
        while occupied.load(Ordering::SeqCst) == 0 {
            std::hint::spin_loop();
        }

        // Shed install under a pre-cancelled token: every chunk must be
        // skipped even on the degraded sequential path.
        let token = bds_pool::CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        pool.install(|| {
            bds_pool::with_token(&token, || {
                bds_pool::apply(100, |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                })
            })
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        assert_eq!(token.skipped_blocks(), 100);

        release.store(1, Ordering::SeqCst);
    });
}
