//! Stress tests for the work-stealing pool: heavy contention, irregular
//! task sizes, and repeated pool churn.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use bds_pool::{apply, join, parallel_for_grain, parallel_reduce, Pool};

#[test]
fn irregular_task_sizes_sum_correctly() {
    let pool = Pool::new(4);
    let n = 50_000usize;
    let total = AtomicU64::new(0);
    pool.install(|| {
        parallel_for_grain(0, n, 7, &|i| {
            // Task cost varies with i so stealing actually matters.
            let mut acc = 0u64;
            for k in 0..(i % 64) {
                acc = acc.wrapping_add(k as u64);
            }
            std::hint::black_box(acc);
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
}

#[test]
fn deeply_nested_joins_do_not_deadlock() {
    fn spawn_tree(depth: usize, leaves: &AtomicUsize) {
        if depth == 0 {
            leaves.fetch_add(1, Ordering::Relaxed);
            return;
        }
        join(
            || spawn_tree(depth - 1, leaves),
            || spawn_tree(depth - 1, leaves),
        );
    }
    let pool = Pool::new(2);
    let leaves = AtomicUsize::new(0);
    pool.install(|| spawn_tree(14, &leaves));
    assert_eq!(leaves.load(Ordering::Relaxed), 1 << 14);
}

#[test]
fn repeated_pool_creation_and_teardown() {
    for round in 0..20 {
        let pool = Pool::new(1 + round % 4);
        let got = pool.install(|| {
            parallel_reduce(
                10_000,
                32,
                0u64,
                &|lo, hi| (lo..hi).map(|i| i as u64).sum(),
                &|a, b| a + b,
            )
        });
        assert_eq!(got, 9_999u64 * 10_000 / 2);
        drop(pool);
    }
}

#[test]
fn concurrent_installs_from_many_external_threads() {
    let pool = std::sync::Arc::new(Pool::new(4));
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let pool = std::sync::Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            pool.install(move || {
                parallel_reduce(
                    10_000,
                    64,
                    0u64,
                    &|lo, hi| (lo..hi).map(|i| i as u64 + t).sum(),
                    &|a, b| a + b,
                )
            })
        }));
    }
    for (t, handle) in handles.into_iter().enumerate() {
        let got = handle.join().unwrap();
        assert_eq!(got, 9_999u64 * 10_000 / 2 + 10_000 * t as u64);
    }
}

#[test]
fn apply_with_side_effect_vector_writes() {
    // apply writing into disjoint slots through raw parallelism-safe cells.
    let n = 8192;
    let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let pool = Pool::new(4);
    pool.install(|| {
        apply(n, |i| {
            slots[i].store((i as u64).pow(2) % 1013, Ordering::Relaxed);
        });
    });
    for (i, s) in slots.iter().enumerate() {
        assert_eq!(s.load(Ordering::Relaxed), (i as u64).pow(2) % 1013);
    }
}

#[test]
fn join_results_preserve_order_of_sides() {
    let pool = Pool::new(3);
    for i in 0..200 {
        let (a, b) = pool.install(|| join(move || ("left", i), move || ("right", i)));
        assert_eq!(a, ("left", i));
        assert_eq!(b, ("right", i));
    }
}
