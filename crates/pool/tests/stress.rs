//! Stress tests for the work-stealing pool: heavy contention, irregular
//! task sizes, and repeated pool churn.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use bds_pool::{apply, join, parallel_for_grain, parallel_reduce, Pool};

#[test]
fn irregular_task_sizes_sum_correctly() {
    let pool = Pool::new(4);
    let n = 50_000usize;
    let total = AtomicU64::new(0);
    pool.install(|| {
        parallel_for_grain(0, n, 7, &|i| {
            // Task cost varies with i so stealing actually matters.
            let mut acc = 0u64;
            for k in 0..(i % 64) {
                acc = acc.wrapping_add(k as u64);
            }
            std::hint::black_box(acc);
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
}

#[test]
fn deeply_nested_joins_do_not_deadlock() {
    fn spawn_tree(depth: usize, leaves: &AtomicUsize) {
        if depth == 0 {
            leaves.fetch_add(1, Ordering::Relaxed);
            return;
        }
        join(
            || spawn_tree(depth - 1, leaves),
            || spawn_tree(depth - 1, leaves),
        );
    }
    let pool = Pool::new(2);
    let leaves = AtomicUsize::new(0);
    pool.install(|| spawn_tree(14, &leaves));
    assert_eq!(leaves.load(Ordering::Relaxed), 1 << 14);
}

#[test]
fn repeated_pool_creation_and_teardown() {
    for round in 0..20 {
        let pool = Pool::new(1 + round % 4);
        let got = pool.install(|| {
            parallel_reduce(
                10_000,
                32,
                0u64,
                &|lo, hi| (lo..hi).map(|i| i as u64).sum(),
                &|a, b| a + b,
            )
        });
        assert_eq!(got, 9_999u64 * 10_000 / 2);
        drop(pool);
    }
}

#[test]
fn concurrent_installs_from_many_external_threads() {
    let pool = std::sync::Arc::new(Pool::new(4));
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let pool = std::sync::Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            pool.install(move || {
                parallel_reduce(
                    10_000,
                    64,
                    0u64,
                    &|lo, hi| (lo..hi).map(|i| i as u64 + t).sum(),
                    &|a, b| a + b,
                )
            })
        }));
    }
    for (t, handle) in handles.into_iter().enumerate() {
        let got = handle.join().unwrap();
        assert_eq!(got, 9_999u64 * 10_000 / 2 + 10_000 * t as u64);
    }
}

#[test]
fn apply_with_side_effect_vector_writes() {
    // apply writing into disjoint slots through raw parallelism-safe cells.
    let n = 8192;
    let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let pool = Pool::new(4);
    pool.install(|| {
        apply(n, |i| {
            slots[i].store((i as u64).pow(2) % 1013, Ordering::Relaxed);
        });
    });
    for (i, s) in slots.iter().enumerate() {
        assert_eq!(s.load(Ordering::Relaxed), (i as u64).pow(2) % 1013);
    }
}

#[test]
fn join_results_preserve_order_of_sides() {
    let pool = Pool::new(3);
    for i in 0..200 {
        let (a, b) = pool.install(|| join(move || ("left", i), move || ("right", i)));
        assert_eq!(a, ("left", i));
        assert_eq!(b, ("right", i));
    }
}

/// Satellite of the failure-semantics work: a pool must survive a panic
/// in a random block of `apply` over and over, with a watchdog to turn
/// a deadlock (e.g. a lost latch set or a stuck sibling) into a test
/// failure rather than a CI timeout.
#[test]
fn repeated_random_block_panics_do_not_wedge_the_pool() {
    use std::sync::mpsc;

    // Quiet hook: this test provokes ~100 panics on purpose; the
    // default hook would spray backtraces over the test output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let (done_tx, done_rx) = mpsc::channel::<()>();
    let body = std::thread::spawn(move || {
        let pool = Pool::new(4);
        let n = 256usize;
        // Deterministic pseudo-random victim block per iteration.
        let mut seed = 0x243F_6A88_85A3_08D3u64;
        for iter in 0..100 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let victim = (seed >> 33) as usize % n;
            let ran = AtomicUsize::new(0);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.install(|| {
                    apply(n, |i| {
                        ran.fetch_add(1, Ordering::Relaxed);
                        if i == victim {
                            panic!("iteration {iter}: block {victim} down");
                        }
                    });
                })
            }));
            assert!(r.is_err(), "iteration {iter}: panic must propagate");
            // Every non-victim block either ran or was abandoned during
            // unwinding; the pool itself must stay fully usable.
            assert!(ran.load(Ordering::Relaxed) >= 1);
            assert_eq!(pool.install(|| iter), iter);
        }
        // Full-sized healthy run to prove no capacity was lost.
        let total = AtomicU64::new(0);
        pool.install(|| {
            apply(n, |i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
        done_tx.send(()).unwrap();
    });

    // Watchdog: the whole loop is ~100 tiny applies; a minute means a
    // deadlock, not slowness.
    let verdict = done_rx.recv_timeout(std::time::Duration::from_secs(60));
    std::panic::set_hook(prev_hook);
    verdict.expect("watchdog: repeated-panic stress did not finish within 60s");
    body.join().expect("stress body panicked");
}
