//! Model checks over `bds-pool`'s synchronization primitives.
//!
//! Runs only with `--features loom` (a dedicated CI job does:
//! `cargo test -p bds-pool --features loom --test loom`). The test
//! bodies are written against the real `loom` API — `loom::model`
//! explores interleavings of the closure — so they upgrade to true
//! exhaustive model checking when the registry-backed `loom` replaces
//! the offline stand-in in `vendor/loom` (which stresses each model
//! with repeated real-thread runs instead).
//!
//! What is checked:
//! - `SpinLatch` set/probe publishes the job's result writes
//!   (Release/Acquire pairing in `latch.rs`).
//! - `LockLatch` wait/set cannot miss the wakeup signal, in either
//!   arrival order.
//! - `CancelToken` cancellation is visible across threads, parent
//!   cancellation reaches children, and child cancellation stays
//!   contained.
//! - The skipped-chunk counter never loses increments under contention
//!   and aggregates child counts into ancestors.
//! - The recovery layer's quarantine slot: among concurrently recorded
//!   block failures the lowest ordinal wins deterministically, and the
//!   join observes exactly one typed failure.
//! - The stream core's drive-loop poll ordering: a `PollTicker` inside
//!   a cancelled region aborts at the first poll boundary after the
//!   cancel is published, and the process-wide poll counter stays a
//!   pure function of the element stream under any interleaving.

#![cfg(feature = "loom")]

use bds_pool::model_check::{
    note_skipped, record_block_failure, retry_ctx, take_block_failure, Latch, LockLatch, SpinLatch,
};
use bds_pool::{reset_ticker_polls, ticker_polls, with_token, CancelToken, PollTicker};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// A write made before `set()` must be visible to a thread that has
/// observed `probe() == true`: the Relaxed data load is ordered by the
/// latch's own Release store / Acquire load pair.
#[test]
fn spin_latch_publishes_result_writes() {
    loom::model(|| {
        let latch = Arc::new(SpinLatch::new());
        let data = Arc::new(AtomicUsize::new(0));
        let (l2, d2) = (Arc::clone(&latch), Arc::clone(&data));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            l2.set();
        });
        while !latch.probe() {
            thread::yield_now();
        }
        assert_eq!(data.load(Ordering::Relaxed), 42);
        t.join().unwrap();
    });
}

/// `wait()` must return no matter how the setter and waiter interleave:
/// the notify happens under the state lock, so the waiter can never
/// read `false`, release the lock, and then miss the signal.
#[test]
fn lock_latch_never_misses_the_wakeup() {
    loom::model(|| {
        let latch = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&latch);
        let t = thread::spawn(move || l2.set());
        latch.wait();
        t.join().unwrap();
    });
}

/// The set-before-wait order must also terminate (the waiter sees the
/// flag without ever sleeping).
#[test]
fn lock_latch_set_then_wait_does_not_block() {
    loom::model(|| {
        let latch = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&latch);
        let t = thread::spawn(move || l2.set());
        t.join().unwrap();
        latch.wait();
    });
}

/// A cancel on the parent must become visible to a child polling
/// `is_cancelled()` (the ancestor walk reads with Acquire, pairing with
/// the Release store in `cancel()`).
#[test]
fn parent_cancel_reaches_polling_child() {
    loom::model(|| {
        let parent = CancelToken::new();
        let child = parent.child();
        let p2 = parent.clone();
        let t = thread::spawn(move || p2.cancel());
        while !child.is_cancelled() {
            thread::yield_now();
        }
        t.join().unwrap();
        assert!(parent.is_cancelled());
    });
}

/// Cancelling a child concurrently with the parent spawning further
/// children must never mark the parent (or a sibling) cancelled:
/// failures inside a nested region stay contained.
#[test]
fn child_cancel_stays_contained_under_concurrency() {
    loom::model(|| {
        let parent = CancelToken::new();
        let child = parent.child();
        let t = thread::spawn(move || child.cancel());
        let sibling = parent.child();
        t.join().unwrap();
        assert!(!parent.is_cancelled());
        assert!(!sibling.is_cancelled());
    });
}

/// The stream core's drive-loop cancellation contract: a leaf
/// `PollTicker` streaming INTERVAL-element chunks inside a cancelled
/// region must abandon it via the sentinel panic at the first poll
/// boundary that observes the cancel — never keep streaming past it,
/// and never "observe" a cancel that the canceller has not yet
/// published (the poll's Acquire read pairs with the Release store in
/// `cancel()`). This is the ordering every drive loop in
/// `bds_seq::stream` relies on for its bounded cancellation latency.
/// Serializes the tests that touch the process-global poll counter
/// (ticking at all bumps it, and one test asserts its exact value).
static TICKS: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn drive_loop_ticker_aborts_at_first_poll_after_cancel() {
    let _l = TICKS.lock().unwrap_or_else(|e| e.into_inner());
    // The abort is a sentinel panic; keep the default hook from
    // printing a backtrace per model iteration.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    loom::model(|| {
        let token = CancelToken::new();
        let t2 = token.clone();
        let canceller = thread::spawn(move || t2.cancel());
        let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_token(&token, || {
                let mut ticker = PollTicker::new();
                // One INTERVAL-element chunk per iteration: the tick at
                // the chunk boundary is the drive loop's only poll site.
                loop {
                    ticker.tick_n(PollTicker::INTERVAL as usize);
                    thread::yield_now();
                }
            })
        }))
        .is_err();
        canceller.join().unwrap();
        assert!(aborted, "a poll after the cancel must abandon the region");
        assert!(token.is_cancelled());
    });
    std::panic::set_hook(prev);
}

/// Poll counts are a pure function of the element stream, independent
/// of scheduling: two workers each ticking one full INTERVAL on their
/// own fresh tickers bump the process-wide poll counter by exactly two,
/// under every interleaving. The `stream_parity` integration test
/// depends on this determinism to compare instantiations.
#[test]
fn ticker_poll_counter_deterministic_under_concurrency() {
    let _l = TICKS.lock().unwrap_or_else(|e| e.into_inner());
    loom::model(|| {
        reset_ticker_polls();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                thread::spawn(|| {
                    let mut ticker = PollTicker::new();
                    ticker.tick_n(PollTicker::INTERVAL as usize);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(ticker_polls(), 2, "polls lost or duplicated");
    });
}

/// Two blocks quarantining concurrently against one recovery context
/// must resolve deterministically: whichever interleaving the recorder
/// threads take, the join sees exactly one `BlockFailed` and it names
/// the lowest failed ordinal — the same block a sequential run would
/// have failed on first. This is the ordering `run_recovered` relies on
/// to surface one typed error per job.
#[test]
fn concurrent_quarantines_surface_the_lowest_ordinal_once() {
    loom::model(|| {
        let ctx = retry_ctx();
        let (c1, c2) = (std::sync::Arc::clone(&ctx), std::sync::Arc::clone(&ctx));
        let t1 = thread::spawn(move || record_block_failure(&c1, 7, 3));
        let t2 = thread::spawn(move || record_block_failure(&c2, 2, 3));
        t1.join().unwrap();
        t2.join().unwrap();
        let bf = take_block_failure(&ctx).expect("a quarantine was recorded");
        assert_eq!(bf.ordinal, 2, "lowest failed ordinal wins");
        assert_eq!(bf.attempts, 3);
        assert!(
            take_block_failure(&ctx).is_none(),
            "exactly one failure surfaces per job"
        );
    });
}

/// Concurrent skip recording from two child regions must lose no
/// increments and must aggregate into the shared parent: the children
/// see only their own counts, the parent sees the sum.
#[test]
fn skipped_counter_aggregates_without_losing_increments() {
    loom::model(|| {
        let parent = CancelToken::new();
        let (c1, c2) = (parent.child(), parent.child());
        let (c1t, c2t) = (c1.clone(), c2.clone());
        let t1 = thread::spawn(move || {
            for _ in 0..3 {
                note_skipped(&c1t, 1);
            }
        });
        let t2 = thread::spawn(move || {
            note_skipped(&c2t, 5);
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(c1.skipped_blocks(), 3);
        assert_eq!(c2.skipped_blocks(), 5);
        assert_eq!(parent.skipped_blocks(), 8);
    });
}
