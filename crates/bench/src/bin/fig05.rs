//! Regenerates **Figure 5**: the per-stage read/write accounting of the
//! best-cut pipeline (map → scan → map → reduce), unfused vs fused, from
//! the cost model — plus, when the `counters` feature is enabled on
//! `bds-seq`/`bds-baseline`, an empirical cross-check that the library's
//! instrumented element traffic matches the model's shape.

use bds_cost::{bestcut_force_first_map, bestcut_fused, bestcut_normal, RwTable};
use bds_metrics::Table;
use bds_workloads::bestcut;

fn print_table(t: &RwTable, n: u64, b: u64) {
    println!("-- {} (n = {n}, b = {b}) --", t.name);
    let mut out = Table::new(vec!["stage", "R", "W"]);
    let fmt = |v: Option<u64>| v.map_or("—".to_string(), |x| x.to_string());
    for row in &t.rows {
        out.row(vec![row.stage.to_string(), fmt(row.reads), fmt(row.writes)]);
    }
    println!("{}", out.render());
    println!("Total (R+W): {}", t.total());
    println!();
}

fn main() {
    let n: u64 = 1_000_000;
    let b: u64 = n / bds_seq::block_size(n as usize) as u64;
    println!("Figure 5 — best-cut read/write accounting");
    println!();
    let normal = bestcut_normal(n, b);
    let fused = bestcut_fused(n, b);
    let forced = bestcut_force_first_map(n, b);
    print_table(&normal, n, b);
    print_table(&fused, n, b);
    print_table(&forced, n, b);
    println!(
        "Model ratio normal/fused: {:.2} (paper: 8n+O(b) vs 2n+O(b) → ~4)",
        normal.total() as f64 / fused.total() as f64
    );
    println!();

    // Empirical cross-check with the instrumented library.
    let ev = bestcut::generate(bestcut::Params {
        n: n as usize,
        ..Default::default()
    });
    bds_seq::counters::reset();
    let _ = bestcut::run_delay(&ev);
    let (r_delay, w_delay, a_delay) = bds_seq::counters::snapshot();
    bds_seq::counters::reset();
    let _ = bestcut::run_array(&ev);
    let (r_array, w_array, _a_array) = bds_seq::counters::snapshot();
    if r_delay == 0 && r_array == 0 {
        println!(
            "(measured counters: build with `--features bds-workloads/counters` \
             to cross-check the model empirically)"
        );
    } else {
        println!("Measured element traffic (delay): R={r_delay} W={w_delay} alloc={a_delay}");
        println!(
            "Measured traffic per element (delay): {:.2} (model fused: ~{:.2})",
            (r_delay + w_delay) as f64 / n as f64,
            fused.total() as f64 / n as f64
        );
        if r_array + w_array > 0 {
            println!("Measured element traffic (array): R={r_array} W={w_array}");
        }
    }
}
