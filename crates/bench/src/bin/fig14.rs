//! Regenerates **Figure 14**: the RAD-only benchmarks (grep, integrate,
//! linearrec, linefit, mcss, quickhull, sparse-mxv, wc) comparing the
//! array library (A) against the full delayed library (Ours), in time
//! and peak space, at P = 1 and P = max.

use bds_bench::{max_procs, measure, Scale};
use bds_metrics::{fmt_mb, fmt_ratio, fmt_secs, Table};
use bds_workloads::{grep, integrate, linearrec, linefit, mcss, quickhull, spmv, wc};

#[global_allocator]
static ALLOC: bds_metrics::CountingAlloc = bds_metrics::CountingAlloc;

struct Row {
    name: &'static str,
    /// (time, peak) for [A, Ours], one entry per proc count.
    results: Vec<[(f64, usize); 2]>,
}

fn main() {
    let scale = Scale::from_args();
    let proto = scale.protocol();
    let procs = [1usize, max_procs()];
    println!(
        "Figure 14 — benchmarks with RAD-only improvement (scale: {:?}, P = {:?})",
        scale, procs
    );
    println!();

    let mut rows: Vec<Row> = Vec::new();

    // grep
    {
        let p = grep::Params {
            n: scale.size(8_000_000),
            ..Default::default()
        };
        let text = grep::generate(&p);
        let pat = p.pattern.clone();
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure(procs_n, proto, || grep::run_array(&text, &pat)),
                measure(procs_n, proto, || grep::run_delay(&text, &pat)),
            ]);
        }
        rows.push(Row {
            name: "grep",
            results,
        });
    }

    // integrate
    {
        let p = integrate::Params {
            n: scale.size(4_000_000),
            ..Default::default()
        };
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure(procs_n, proto, || integrate::run_array(p)),
                measure(procs_n, proto, || integrate::run_delay(p)),
            ]);
        }
        rows.push(Row {
            name: "integrate",
            results,
        });
    }

    // linearrec
    {
        let pairs = linearrec::generate(linearrec::Params {
            n: scale.size(4_000_000),
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure(procs_n, proto, || linearrec::run_array(&pairs, 1.0)),
                measure(procs_n, proto, || linearrec::run_delay(&pairs, 1.0)),
            ]);
        }
        rows.push(Row {
            name: "linearrec",
            results,
        });
    }

    // linefit
    {
        let pts = linefit::generate(linefit::Params {
            n: scale.size(4_000_000),
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure(procs_n, proto, || linefit::run_array(&pts)),
                measure(procs_n, proto, || linefit::run_delay(&pts)),
            ]);
        }
        rows.push(Row {
            name: "linefit",
            results,
        });
    }

    // mcss
    {
        let xs = mcss::generate(mcss::Params {
            n: scale.size(4_000_000),
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure(procs_n, proto, || mcss::run_array(&xs)),
                measure(procs_n, proto, || mcss::run_delay(&xs)),
            ]);
        }
        rows.push(Row {
            name: "mcss",
            results,
        });
    }

    // quickhull
    {
        let pts = quickhull::generate(quickhull::Params {
            n: scale.size(500_000),
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure(procs_n, proto, || quickhull::run_array(&pts)),
                measure(procs_n, proto, || quickhull::run_delay(&pts)),
            ]);
        }
        rows.push(Row {
            name: "quickhull",
            results,
        });
    }

    // sparse-mxv
    {
        let m = spmv::generate(spmv::Params {
            rows: scale.size(20_000),
            cols: scale.size(20_000),
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure(procs_n, proto, || spmv::run_array(&m)),
                measure(procs_n, proto, || spmv::run_delay(&m)),
            ]);
        }
        rows.push(Row {
            name: "sparse-mxv",
            results,
        });
    }

    // wc
    {
        let text = wc::generate(wc::Params {
            n: scale.size(8_000_000),
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure(procs_n, proto, || wc::run_array(&text)),
                measure(procs_n, proto, || wc::run_delay(&text)),
            ]);
        }
        rows.push(Row {
            name: "wc",
            results,
        });
    }

    for (pi, &p) in procs.iter().enumerate() {
        println!("== P = {p} ==");
        let mut t = Table::new(vec![
            "benchmark",
            "T(A)",
            "T(Ours)",
            "A/Ours",
            "Sp(A) MB",
            "Sp(Ours) MB",
            "A/Ours",
        ]);
        for row in &rows {
            let [(ta, sa), (to, so)] = row.results[pi];
            t.row(vec![
                row.name.to_string(),
                fmt_secs(ta),
                fmt_secs(to),
                fmt_ratio(ta / to),
                fmt_mb(sa),
                fmt_mb(so),
                fmt_ratio(sa as f64 / so.max(1) as f64),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected shape (paper): Ours as fast or faster everywhere (1x-19x), \
         space up to 250x smaller (integrate)."
    );
}
