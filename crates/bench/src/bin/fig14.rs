//! Regenerates **Figure 14**: the RAD-only benchmarks (grep, integrate,
//! linearrec, linefit, mcss, quickhull, sparse-mxv, wc) comparing the
//! array library (A) against the full delayed library (Ours), in time
//! and peak space, at P = 1 and P = max.
//!
//! Flags: `--quick`/`--full` (scale), `--json <path>` (machine-readable
//! export, schema `bds-bench/v2`), `--profile` (per-stage pipeline
//! report for each delay-variant run at P = max).

use bds_bench::json::{JsonReport, Record};
use bds_bench::{arg_value, has_flag, max_procs, measure_full, Measurement, Scale};
use bds_metrics::{fmt_mb, fmt_ratio, fmt_secs, Table};
use bds_workloads::{grep, integrate, linearrec, linefit, mcss, quickhull, spmv, wc};

#[global_allocator]
static ALLOC: bds_metrics::CountingAlloc = bds_metrics::CountingAlloc;

const LIBS: [&str; 2] = ["array", "delay"];

struct Row {
    name: &'static str,
    n: usize,
    /// [A, Ours] per proc count.
    results: Vec<[Measurement; 2]>,
}

fn main() {
    let scale = Scale::from_args();
    let proto = scale.protocol();
    let json_path = arg_value("--json");
    let profile = has_flag("--profile");
    let capture = json_path.is_some() || profile;
    let procs = [1usize, max_procs()];
    println!(
        "Figure 14 — benchmarks with RAD-only improvement (scale: {:?}, P = {:?})",
        scale, procs
    );
    println!();

    let mut rows: Vec<Row> = Vec::new();

    // grep
    {
        let p = grep::Params {
            n: scale.size(8_000_000),
            ..Default::default()
        };
        let n = p.n;
        let text = grep::generate(&p);
        let pat = p.pattern.clone();
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure_full(procs_n, proto, capture, || grep::run_array(&text, &pat)),
                measure_full(procs_n, proto, capture, || grep::run_delay(&text, &pat)),
            ]);
        }
        rows.push(Row {
            name: "grep",
            n,
            results,
        });
    }

    // integrate
    {
        let p = integrate::Params {
            n: scale.size(4_000_000),
            ..Default::default()
        };
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure_full(procs_n, proto, capture, || integrate::run_array(p)),
                measure_full(procs_n, proto, capture, || integrate::run_delay(p)),
            ]);
        }
        rows.push(Row {
            name: "integrate",
            n: p.n,
            results,
        });
    }

    // linearrec
    {
        let n = scale.size(4_000_000);
        let pairs = linearrec::generate(linearrec::Params {
            n,
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure_full(procs_n, proto, capture, || linearrec::run_array(&pairs, 1.0)),
                measure_full(procs_n, proto, capture, || linearrec::run_delay(&pairs, 1.0)),
            ]);
        }
        rows.push(Row {
            name: "linearrec",
            n,
            results,
        });
    }

    // linefit
    {
        let n = scale.size(4_000_000);
        let pts = linefit::generate(linefit::Params {
            n,
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure_full(procs_n, proto, capture, || linefit::run_array(&pts)),
                measure_full(procs_n, proto, capture, || linefit::run_delay(&pts)),
            ]);
        }
        rows.push(Row {
            name: "linefit",
            n,
            results,
        });
    }

    // mcss
    {
        let n = scale.size(4_000_000);
        let xs = mcss::generate(mcss::Params {
            n,
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure_full(procs_n, proto, capture, || mcss::run_array(&xs)),
                measure_full(procs_n, proto, capture, || mcss::run_delay(&xs)),
            ]);
        }
        rows.push(Row {
            name: "mcss",
            n,
            results,
        });
    }

    // quickhull
    {
        let n = scale.size(500_000);
        let pts = quickhull::generate(quickhull::Params {
            n,
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure_full(procs_n, proto, capture, || quickhull::run_array(&pts)),
                measure_full(procs_n, proto, capture, || quickhull::run_delay(&pts)),
            ]);
        }
        rows.push(Row {
            name: "quickhull",
            n,
            results,
        });
    }

    // sparse-mxv
    {
        let n = scale.size(20_000);
        let m = spmv::generate(spmv::Params {
            rows: n,
            cols: n,
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure_full(procs_n, proto, capture, || spmv::run_array(&m)),
                measure_full(procs_n, proto, capture, || spmv::run_delay(&m)),
            ]);
        }
        rows.push(Row {
            name: "sparse-mxv",
            n,
            results,
        });
    }

    // wc
    {
        let n = scale.size(8_000_000);
        let text = wc::generate(wc::Params {
            n,
            ..Default::default()
        });
        let mut results = Vec::new();
        for &procs_n in &procs {
            results.push([
                measure_full(procs_n, proto, capture, || wc::run_array(&text)),
                measure_full(procs_n, proto, capture, || wc::run_delay(&text)),
            ]);
        }
        rows.push(Row {
            name: "wc",
            n,
            results,
        });
    }

    for (pi, &p) in procs.iter().enumerate() {
        println!("== P = {p} ==");
        let mut t = Table::new(vec![
            "benchmark",
            "T(A)",
            "T(Ours)",
            "A/Ours",
            "Sp(A) MB",
            "Sp(Ours) MB",
            "A/Ours",
        ]);
        for row in &rows {
            let [a, o] = &row.results[pi];
            t.row(vec![
                row.name.to_string(),
                fmt_secs(a.timing.mean),
                fmt_secs(o.timing.mean),
                fmt_ratio(a.timing.min / o.timing.min),
                fmt_mb(a.peak_bytes),
                fmt_mb(o.peak_bytes),
                fmt_ratio(a.peak_bytes as f64 / o.peak_bytes.max(1) as f64),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected shape (paper): Ours as fast or faster everywhere (1x-19x), \
         space up to 250x smaller (integrate)."
    );

    if profile {
        println!();
        for row in &rows {
            if let Some(c) = row.results.last().and_then(|ms| ms[1].capture.as_ref()) {
                println!("-- profile: {} (delay, P = {}) --", row.name, procs[1]);
                println!("{}", c.report.render());
            }
        }
    }

    if let Some(path) = json_path {
        let mut rep = JsonReport::new("fig14", scale.name());
        for row in &rows {
            for ms in &row.results {
                for (li, m) in ms.iter().enumerate() {
                    rep.push(Record::from_measurement(row.name, LIBS[li], row.n, m));
                }
            }
        }
        match rep.write(&path) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
