//! Regenerates **Figure 13**: the BID benchmarks (bestcut, bfs,
//! bignum-add, primes, tokens) in all three library versions — array (A),
//! rad (R), delay (Ours) — reporting time and peak space at P = 1 and
//! P = max, with the paper's R/Ours improvement ratios.

use bds_bench::{max_procs, measure, Scale};
use bds_metrics::{fmt_mb, fmt_ratio, fmt_secs, Table};
use bds_workloads::{bestcut, bfs, bignum, primes, tokens};

#[global_allocator]
static ALLOC: bds_metrics::CountingAlloc = bds_metrics::CountingAlloc;

struct Row {
    name: &'static str,
    /// (time_secs, peak_bytes) for [A, R, Ours].
    results: Vec<[(f64, usize); 3]>, // one entry per proc count
}

fn main() {
    let scale = Scale::from_args();
    let proto = scale.protocol();
    let procs = [1usize, max_procs()];
    println!(
        "Figure 13 — benchmarks with BID improvement (scale: {:?}, P = {:?})",
        scale, procs
    );
    println!();

    let mut rows: Vec<Row> = Vec::new();

    // bestcut
    {
        let ev = bestcut::generate(bestcut::Params {
            n: scale.size(2_000_000),
            ..Default::default()
        });
        let mut results = Vec::new();
        for &p in &procs {
            results.push([
                measure(p, proto, || bestcut::run_array(&ev)),
                measure(p, proto, || bestcut::run_rad(&ev)),
                measure(p, proto, || bestcut::run_delay(&ev)),
            ]);
        }
        rows.push(Row {
            name: "bestcut",
            results,
        });
    }

    // bfs
    {
        let g = bfs::generate(bfs::Params {
            scale: if scale == Scale::Full { 18 } else { 15 },
            ..Default::default()
        });
        let mut results = Vec::new();
        for &p in &procs {
            results.push([
                measure(p, proto, || bfs::run_array(&g, 0)),
                measure(p, proto, || bfs::run_rad(&g, 0)),
                measure(p, proto, || bfs::run_delay(&g, 0)),
            ]);
        }
        rows.push(Row {
            name: "bfs",
            results,
        });
    }

    // bignum-add
    {
        let (a, b) = bignum::generate(bignum::Params {
            n: scale.size(8_000_000),
            ..Default::default()
        });
        let mut results = Vec::new();
        for &p in &procs {
            results.push([
                measure(p, proto, || bignum::run_array(&a, &b)),
                measure(p, proto, || bignum::run_rad(&a, &b)),
                measure(p, proto, || bignum::run_delay(&a, &b)),
            ]);
        }
        rows.push(Row {
            name: "bignum-add",
            results,
        });
    }

    // primes
    {
        let n = scale.size(2_000_000);
        let mut results = Vec::new();
        for &p in &procs {
            results.push([
                measure(p, proto, || primes::run_array(n)),
                measure(p, proto, || primes::run_rad(n)),
                measure(p, proto, || primes::run_delay(n)),
            ]);
        }
        rows.push(Row {
            name: "primes",
            results,
        });
    }

    // tokens
    {
        let text = tokens::generate(tokens::Params {
            n: scale.size(8_000_000),
            ..Default::default()
        });
        let mut results = Vec::new();
        for &p in &procs {
            results.push([
                measure(p, proto, || tokens::run_array(&text)),
                measure(p, proto, || tokens::run_rad(&text)),
                measure(p, proto, || tokens::run_delay(&text)),
            ]);
        }
        rows.push(Row {
            name: "tokens",
            results,
        });
    }

    for (pi, &p) in procs.iter().enumerate() {
        println!("== P = {p} ==");
        let mut t = Table::new(vec![
            "benchmark",
            "T(A)",
            "T(R)",
            "T(Ours)",
            "R/Ours",
            "Sp(A) MB",
            "Sp(R) MB",
            "Sp(Ours) MB",
            "R/Ours",
        ]);
        for row in &rows {
            let [(ta, sa), (tr, sr), (to, so)] = row.results[pi];
            t.row(vec![
                row.name.to_string(),
                fmt_secs(ta),
                fmt_secs(tr),
                fmt_secs(to),
                fmt_ratio(tr / to),
                fmt_mb(sa),
                fmt_mb(sr),
                fmt_mb(so),
                fmt_ratio(sr as f64 / so.max(1) as f64),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected shape (paper, 72 cores): Ours ≤ R ≤ A in time at P=max; \
         space R/Ours between 1.1x and 14x."
    );
}
