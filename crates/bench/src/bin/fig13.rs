//! Regenerates **Figure 13**: the BID benchmarks (bestcut, bfs,
//! bignum-add, primes, tokens) in all three library versions — array (A),
//! rad (R), delay (Ours) — reporting time and peak space at P = 1 and
//! P = max, with the paper's R/Ours improvement ratios.
//!
//! Flags: `--quick`/`--full` (scale), `--json <path>` (machine-readable
//! export, schema `bds-bench/v2`), `--profile` (per-stage pipeline
//! report for each delay-variant run at P = max).

use bds_bench::json::{JsonReport, Record};
use bds_bench::{arg_value, has_flag, max_procs, measure_full, Measurement, Scale};
use bds_metrics::{fmt_mb, fmt_ratio, fmt_secs, Table};
use bds_workloads::{bestcut, bfs, bignum, primes, tokens};

#[global_allocator]
static ALLOC: bds_metrics::CountingAlloc = bds_metrics::CountingAlloc;

const LIBS: [&str; 3] = ["array", "rad", "delay"];

struct Row {
    name: &'static str,
    n: usize,
    /// [A, R, Ours] per proc count.
    results: Vec<[Measurement; 3]>,
}

fn main() {
    let scale = Scale::from_args();
    let proto = scale.protocol();
    let json_path = arg_value("--json");
    let profile = has_flag("--profile");
    let capture = json_path.is_some() || profile;
    let procs = [1usize, max_procs()];
    println!(
        "Figure 13 — benchmarks with BID improvement (scale: {:?}, P = {:?})",
        scale, procs
    );
    println!();

    let mut rows: Vec<Row> = Vec::new();

    // bestcut
    {
        let n = scale.size(2_000_000);
        let ev = bestcut::generate(bestcut::Params {
            n,
            ..Default::default()
        });
        let mut results = Vec::new();
        for &p in &procs {
            results.push([
                measure_full(p, proto, capture, || bestcut::run_array(&ev)),
                measure_full(p, proto, capture, || bestcut::run_rad(&ev)),
                measure_full(p, proto, capture, || bestcut::run_delay(&ev)),
            ]);
        }
        rows.push(Row {
            name: "bestcut",
            n,
            results,
        });
    }

    // bfs
    {
        let log2_nodes = if scale == Scale::Full { 18 } else { 15 };
        let g = bfs::generate(bfs::Params {
            scale: log2_nodes,
            ..Default::default()
        });
        let mut results = Vec::new();
        for &p in &procs {
            results.push([
                measure_full(p, proto, capture, || bfs::run_array(&g, 0)),
                measure_full(p, proto, capture, || bfs::run_rad(&g, 0)),
                measure_full(p, proto, capture, || bfs::run_delay(&g, 0)),
            ]);
        }
        rows.push(Row {
            name: "bfs",
            n: 1usize << log2_nodes,
            results,
        });
    }

    // bignum-add
    {
        let n = scale.size(8_000_000);
        let (a, b) = bignum::generate(bignum::Params {
            n,
            ..Default::default()
        });
        let mut results = Vec::new();
        for &p in &procs {
            results.push([
                measure_full(p, proto, capture, || bignum::run_array(&a, &b)),
                measure_full(p, proto, capture, || bignum::run_rad(&a, &b)),
                measure_full(p, proto, capture, || bignum::run_delay(&a, &b)),
            ]);
        }
        rows.push(Row {
            name: "bignum-add",
            n,
            results,
        });
    }

    // primes
    {
        let n = scale.size(2_000_000);
        let mut results = Vec::new();
        for &p in &procs {
            results.push([
                measure_full(p, proto, capture, || primes::run_array(n)),
                measure_full(p, proto, capture, || primes::run_rad(n)),
                measure_full(p, proto, capture, || primes::run_delay(n)),
            ]);
        }
        rows.push(Row {
            name: "primes",
            n,
            results,
        });
    }

    // tokens
    {
        let n = scale.size(8_000_000);
        let text = tokens::generate(tokens::Params {
            n,
            ..Default::default()
        });
        let mut results = Vec::new();
        for &p in &procs {
            results.push([
                measure_full(p, proto, capture, || tokens::run_array(&text)),
                measure_full(p, proto, capture, || tokens::run_rad(&text)),
                measure_full(p, proto, capture, || tokens::run_delay(&text)),
            ]);
        }
        rows.push(Row {
            name: "tokens",
            n,
            results,
        });
    }

    for (pi, &p) in procs.iter().enumerate() {
        println!("== P = {p} ==");
        let mut t = Table::new(vec![
            "benchmark",
            "T(A)",
            "T(R)",
            "T(Ours)",
            "R/Ours",
            "Sp(A) MB",
            "Sp(R) MB",
            "Sp(Ours) MB",
            "R/Ours",
        ]);
        for row in &rows {
            let [a, r, o] = &row.results[pi];
            // Ratios use min (the noise-robust statistic); the displayed
            // times are means, matching the paper's tables.
            t.row(vec![
                row.name.to_string(),
                fmt_secs(a.timing.mean),
                fmt_secs(r.timing.mean),
                fmt_secs(o.timing.mean),
                fmt_ratio(r.timing.min / o.timing.min),
                fmt_mb(a.peak_bytes),
                fmt_mb(r.peak_bytes),
                fmt_mb(o.peak_bytes),
                fmt_ratio(r.peak_bytes as f64 / o.peak_bytes.max(1) as f64),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Expected shape (paper, 72 cores): Ours ≤ R ≤ A in time at P=max; \
         space R/Ours between 1.1x and 14x."
    );

    if profile {
        println!();
        for row in &rows {
            // The delay variant at P = max is where the pipeline
            // structure matters; its capture is the interesting one.
            if let Some(c) = row.results.last().and_then(|ms| ms[2].capture.as_ref()) {
                println!("-- profile: {} (delay, P = {}) --", row.name, procs[1]);
                println!("{}", c.report.render());
            }
        }
    }

    if let Some(path) = json_path {
        let mut rep = JsonReport::new("fig13", scale.name());
        for row in &rows {
            for ms in &row.results {
                for (li, m) in ms.iter().enumerate() {
                    rep.push(Record::from_measurement(row.name, LIBS[li], row.n, m));
                }
            }
        }
        match rep.write(&path) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
