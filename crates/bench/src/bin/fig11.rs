//! Regenerates **Figure 11**: the cost-semantics table, instantiated.
//!
//! The paper's table is symbolic; this binary evaluates every row at a
//! concrete `n` and block size `B` for unit-cost element functions, so
//! the asymptotic claims are visible as numbers (e.g. scan's eager
//! allocation is `n/B`, not `n`).

use bds_cost::{Model, SIMPLE};
use bds_metrics::Table;

fn main() {
    let n: u64 = 1_000_000;
    let b: u64 = 1_000;
    let m = Model::new(b);
    println!("Figure 11 — cost semantics, instantiated at n = {n}, B = {b}");
    println!("(element functions 'simple': unit work/span, no allocation)");
    println!();

    let mut t = Table::new(vec![
        "operation",
        "R(Y)",
        "W*_Y(i)",
        "S*_Y(i)",
        "A*_Y(i)",
        "eager W",
        "eager S",
        "eager A",
    ]);

    let (input, _) = m.input(n);

    {
        let (y, c) = m.force(input);
        t.row(vec![
            "force X".into(),
            format!("{:?}", y.repr),
            y.dw.to_string(),
            y.ds.to_string(),
            y.da.to_string(),
            c.work.to_string(),
            c.span.to_string(),
            c.alloc.to_string(),
        ]);
    }
    {
        let (y, c) = m.tabulate(n, SIMPLE);
        t.row(vec![
            "tabulate n f".into(),
            format!("{:?}", y.repr),
            y.dw.to_string(),
            y.ds.to_string(),
            y.da.to_string(),
            c.work.to_string(),
            c.span.to_string(),
            c.alloc.to_string(),
        ]);
    }
    {
        let (y, c) = m.map(input, SIMPLE);
        t.row(vec![
            "map f X".into(),
            format!("{:?}", y.repr),
            y.dw.to_string(),
            y.ds.to_string(),
            y.da.to_string(),
            c.work.to_string(),
            c.span.to_string(),
            c.alloc.to_string(),
        ]);
    }
    {
        // filter keeping half the elements.
        let (y, c) = m.filter(input, SIMPLE, n / 2);
        t.row(vec![
            "filter p X (|Y|=n/2)".into(),
            format!("{:?}", y.repr),
            y.dw.to_string(),
            y.ds.to_string(),
            y.da.to_string(),
            c.work.to_string(),
            c.span.to_string(),
            c.alloc.to_string(),
        ]);
    }
    {
        // flatten of n/100 inner RADs totalling n elements.
        let (outer, _) = m.input(n / 100);
        let (y, c) = m.flatten(outer, n, SIMPLE);
        t.row(vec![
            "flatten X (|X|=n/100)".into(),
            format!("{:?}", y.repr),
            y.dw.to_string(),
            y.ds.to_string(),
            y.da.to_string(),
            c.work.to_string(),
            c.span.to_string(),
            c.alloc.to_string(),
        ]);
    }
    {
        let (y, c) = m.scan(input);
        t.row(vec![
            "scan f b X".into(),
            format!("{:?}", y.repr),
            y.dw.to_string(),
            y.ds.to_string(),
            y.da.to_string(),
            c.work.to_string(),
            c.span.to_string(),
            c.alloc.to_string(),
        ]);
    }
    {
        let c = m.reduce(input);
        t.row(vec![
            "reduce f b X".into(),
            "—".into(),
            "—".into(),
            "—".into(),
            "—".into(),
            c.work.to_string(),
            c.span.to_string(),
            c.alloc.to_string(),
        ]);
    }

    println!("{}", t.render());
    println!(
        "Readings: delayed constructors (tabulate/map) cost O(1) eagerly; \
         scan and reduce allocate only n/B = {}; filter allocates \
         survivors + n/B; force pays the full n.",
        n / b
    );
}
