//! Regenerates **Figure 16**: the stream-of-blocks bestcut across block
//! sizes, compared against the array-based (A) and block-delayed (Ours)
//! versions on all processors.
//!
//! The paper's finding: stream-of-blocks is never better than plain
//! arrays, improves as the block size grows (synchronization amortizes),
//! and stays ≥3.7× slower than block-delayed sequences.

use bds_bench::{max_procs, measure, Scale};
use bds_metrics::{fmt_ratio, fmt_secs, Table};
use bds_workloads::bestcut;

#[global_allocator]
static ALLOC: bds_metrics::CountingAlloc = bds_metrics::CountingAlloc;

fn main() {
    let scale = Scale::from_args();
    let proto = scale.protocol();
    let p = max_procs();
    let n = scale.size(2_000_000);
    // The paper sweeps 1e5..1e8 at n = 200M (block = n/2000 .. n/2);
    // keep the same *relative* sweep at the scaled n.
    let blocks: Vec<usize> = [n / 2000, n / 200, n / 20, n / 2]
        .into_iter()
        .map(|b| b.max(16))
        .collect();
    println!(
        "Figure 16 — stream-of-blocks bestcut on P = {p} (scale: {:?}, n = {n})",
        scale
    );
    println!();

    let ev = bestcut::generate(bestcut::Params {
        n,
        ..Default::default()
    });
    let (t_array, _) = measure(p, proto, || bestcut::run_array(&ev));
    let (t_delay, _) = measure(p, proto, || bestcut::run_delay(&ev));

    let mut t = Table::new(vec!["Block size", "T (s)", "T/A", "T/Ours"]);
    for &b in &blocks {
        let (t_sob, _) = measure(p, proto, || bestcut::run_sob(&ev, b));
        t.row(vec![
            b.to_string(),
            fmt_secs(t_sob),
            fmt_ratio(t_sob / t_array),
            fmt_ratio(t_sob / t_delay),
        ]);
    }
    println!("{}", t.render());
    println!("array:  T = {} s", fmt_secs(t_array));
    println!("delay:  T = {} s", fmt_secs(t_delay));
    println!();
    println!(
        "Expected shape (paper): T/A >= ~1 for all block sizes, decreasing \
         toward 1 as blocks grow; T/Ours >= ~2 everywhere."
    );
}
