//! Regenerates **Figure 16**: the stream-of-blocks bestcut across block
//! sizes, compared against the array-based (A) and block-delayed (Ours)
//! versions on all processors.
//!
//! The paper's finding: stream-of-blocks is never better than plain
//! arrays, improves as the block size grows (synchronization amortizes),
//! and stays ≥3.7× slower than block-delayed sequences.
//!
//! Flags: `--quick`/`--full` (scale), `--json <path>` (machine-readable
//! export, schema `bds-bench/v2`; the sob records carry the swept block
//! size in `block_size`).

use bds_bench::json::{JsonReport, Record};
use bds_bench::{arg_value, max_procs, measure_full, Scale};
use bds_metrics::{fmt_ratio, fmt_secs, Table};
use bds_workloads::bestcut;

#[global_allocator]
static ALLOC: bds_metrics::CountingAlloc = bds_metrics::CountingAlloc;

fn main() {
    let scale = Scale::from_args();
    let proto = scale.protocol();
    let json_path = arg_value("--json");
    let capture = json_path.is_some();
    let p = max_procs();
    let n = scale.size(2_000_000);
    // The paper sweeps 1e5..1e8 at n = 200M (block = n/2000 .. n/2);
    // keep the same *relative* sweep at the scaled n.
    let blocks: Vec<usize> = [n / 2000, n / 200, n / 20, n / 2]
        .into_iter()
        .map(|b| b.max(16))
        .collect();
    println!(
        "Figure 16 — stream-of-blocks bestcut on P = {p} (scale: {:?}, n = {n})",
        scale
    );
    println!();

    let mut rep = JsonReport::new("fig16", scale.name());

    let ev = bestcut::generate(bestcut::Params {
        n,
        ..Default::default()
    });
    let m_array = measure_full(p, proto, capture, || bestcut::run_array(&ev));
    let m_delay = measure_full(p, proto, capture, || bestcut::run_delay(&ev));
    rep.push(Record::from_measurement("bestcut", "array", n, &m_array));
    rep.push(Record::from_measurement("bestcut", "delay", n, &m_delay));

    let mut t = Table::new(vec!["Block size", "T (s)", "T/A", "T/Ours"]);
    for &b in &blocks {
        let m_sob = measure_full(p, proto, capture, || bestcut::run_sob(&ev, b));
        let mut rec = Record::from_measurement("bestcut", "sob", n, &m_sob);
        // The sob variant runs over explicit blocks of the swept size,
        // outside bds-seq's geometry policy; record the sweep directly.
        rec.block_size = b;
        rec.num_blocks = n.div_ceil(b);
        rep.push(rec);
        t.row(vec![
            b.to_string(),
            fmt_secs(m_sob.timing.mean),
            fmt_ratio(m_sob.timing.min / m_array.timing.min),
            fmt_ratio(m_sob.timing.min / m_delay.timing.min),
        ]);
    }
    println!("{}", t.render());
    println!("array:  T = {} s", fmt_secs(m_array.timing.mean));
    println!("delay:  T = {} s", fmt_secs(m_delay.timing.mean));
    println!();
    println!(
        "Expected shape (paper): T/A >= ~1 for all block sizes, decreasing \
         toward 1 as blocks grow; T/Ours >= ~2 everywhere."
    );

    if let Some(path) = json_path {
        match rep.write(&path) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
