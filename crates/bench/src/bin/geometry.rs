//! Block-geometry sweep: the adaptive cost-model policy versus the
//! paper's fixed `~kP blocks` heuristic, on cost-model-sensitive
//! workloads (bestcut's fused map∘scan∘map∘reduce and primes' nested
//! filter), at P = [`max_procs`].
//!
//! For each workload the sweep pins `Policy::fixed(k)` for
//! k ∈ {1, 8, 32} blocks per worker, then runs the adaptive default, and
//! reports wall times plus the geometry each run resolved. The paper's
//! seed heuristic is `fixed:8`; the adaptive solver should match or beat
//! its `min_s` (it converges to the same ~8P blocks on saturating
//! inputs, and backs off to fewer blocks when per-block overhead would
//! dominate).
//!
//! Flags: `--geometry-sweep` (accepted for discoverability; the sweep is
//! this binary's only mode), `--quick`/`--full` (scale), `--json <path>`
//! (machine-readable export, schema `bds-bench/v2`, default
//! `BENCH_geometry.json`; every record carries its `policy` label).

use bds_bench::json::{JsonReport, Record};
use bds_bench::{arg_value, max_procs, measure_full, Scale};
use bds_metrics::{fmt_ratio, fmt_secs, Table};
use bds_workloads::{bestcut, primes};

#[global_allocator]
static ALLOC: bds_metrics::CountingAlloc = bds_metrics::CountingAlloc;

/// The swept policies, rendered as the JSON `policy` labels.
fn policies() -> Vec<(String, bds_seq::Policy)> {
    let mut ps = vec![("adaptive".to_string(), bds_seq::Policy::Adaptive)];
    for k in [1usize, 8, 32] {
        ps.push((format!("fixed:{k}"), bds_seq::Policy::fixed(k)));
    }
    ps
}

fn main() {
    let scale = Scale::from_args();
    let proto = scale.protocol();
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_geometry.json".to_string());
    let p = max_procs();
    println!(
        "Geometry sweep — adaptive vs fixed block policy on P = {p} (scale: {:?})",
        scale
    );
    println!();

    let mut rep = JsonReport::new("geometry", scale.name());

    let n_bestcut = scale.size(2_000_000);
    let ev = bestcut::generate(bestcut::Params {
        n: n_bestcut,
        ..Default::default()
    });
    let n_primes = scale.size(2_000_000);

    type Workload<'a> = (&'a str, usize, Box<dyn FnMut() + Send>);
    let workloads: Vec<Workload> = vec![
        (
            "bestcut",
            n_bestcut,
            Box::new(move || {
                bestcut::run_delay(&ev);
            }),
        ),
        (
            "primes",
            n_primes,
            Box::new(move || {
                primes::run_delay(n_primes);
            }),
        ),
    ];

    for (op, n, mut run) in workloads {
        let mut t = Table::new(vec!["policy", "T (s)", "min (s)", "vs fixed:8", "blk size", "blocks"]);
        let mut fixed8_min = None;
        let mut rows = Vec::new();
        for (label, policy) in policies() {
            // Pin the policy for the whole measurement (warmup, timed
            // runs, and the untimed capture run all see it).
            let guard = bds_seq::set_policy(policy);
            let m = measure_full(p, proto, true, &mut run);
            drop(guard);
            if label == "fixed:8" {
                fixed8_min = Some(m.timing.min);
            }
            let (bs, nb) = m.geometry();
            let mut rec = Record::from_measurement(op, "delay", n, &m);
            rec.policy = Some(label.clone());
            rep.push(rec);
            rows.push((label, m.timing.mean, m.timing.min, bs, nb));
        }
        for (label, mean, min, bs, nb) in rows {
            let baseline = fixed8_min.unwrap_or(min);
            t.row(vec![
                label,
                fmt_secs(mean),
                fmt_secs(min),
                fmt_ratio(min / baseline),
                bs.to_string(),
                nb.to_string(),
            ]);
        }
        println!("== {op} (n = {n}) ==");
        println!("{}", t.render());
    }
    println!(
        "Expected shape: adaptive ~= fixed:8 on these saturating inputs \
         (ratio ~1.0); fixed:1 underparallelizes, fixed:32 pays extra \
         per-block overhead."
    );

    match rep.write(&json_path) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => {
            eprintln!("error: could not write {json_path}: {e}");
            std::process::exit(1);
        }
    }
}
