//! Regenerates **Figure 15**: speedup curves with respect to the
//! 1-processor `delay` time, for bfs and primes, across a processor
//! sweep, for all three libraries (delay / rad / array).

use bds_bench::{max_procs, measure, proc_sweep, Scale};
use bds_metrics::Table;
use bds_workloads::{bfs, primes};

#[global_allocator]
static ALLOC: bds_metrics::CountingAlloc = bds_metrics::CountingAlloc;

fn speedup_table(
    name: &str,
    procs: &[usize],
    mut run: impl FnMut(usize, &'static str) -> f64,
) {
    println!("== {name} (speedup vs 1-proc delay) ==");
    let base = run(1, "delay");
    let mut t = Table::new(vec!["P", "delay", "rad", "array"]);
    for &p in procs {
        let d = base / run(p, "delay");
        let r = base / run(p, "rad");
        let a = base / run(p, "array");
        t.row(vec![
            p.to_string(),
            format!("{d:.2}"),
            format!("{r:.2}"),
            format!("{a:.2}"),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let scale = Scale::from_args();
    let proto = scale.protocol();
    let procs = proc_sweep(max_procs());
    println!(
        "Figure 15 — scalability (scale: {:?}, procs {:?})",
        scale, procs
    );
    println!();

    {
        let g = bfs::generate(bfs::Params {
            scale: if scale == Scale::Full { 18 } else { 15 },
            ..Default::default()
        });
        speedup_table("bfs", &procs, |p, lib| {
            let (secs, _) = match lib {
                "delay" => measure(p, proto, || bfs::run_delay(&g, 0)),
                "rad" => measure(p, proto, || bfs::run_rad(&g, 0)),
                _ => measure(p, proto, || bfs::run_array(&g, 0)),
            };
            secs
        });
    }

    {
        let n = scale.size(2_000_000);
        speedup_table("primes", &procs, |p, lib| {
            let (secs, _) = match lib {
                "delay" => measure(p, proto, || primes::run_delay(n)),
                "rad" => measure(p, proto, || primes::run_rad(n)),
                _ => measure(p, proto, || primes::run_array(n)),
            };
            secs
        });
    }

    println!(
        "Expected shape (paper): the delay curve sits above rad, which sits \
         above array, with the gap widening as P grows."
    );
}
