//! Regenerates **Figure 15**: speedup curves with respect to the
//! 1-processor `delay` time, for bfs and primes, across a processor
//! sweep, for all three libraries (delay / rad / array).
//!
//! Flags: `--quick`/`--full` (scale), `--json <path>` (machine-readable
//! export, schema `bds-bench/v2`).

use bds_bench::json::{JsonReport, Record};
use bds_bench::{arg_value, max_procs, measure_full, proc_sweep, Scale};
use bds_metrics::Table;
use bds_workloads::{bfs, primes};

#[global_allocator]
static ALLOC: bds_metrics::CountingAlloc = bds_metrics::CountingAlloc;

fn speedup_table(
    name: &str,
    n: usize,
    procs: &[usize],
    json: Option<&mut JsonReport>,
    mut run: impl FnMut(usize, &'static str) -> bds_bench::Measurement,
) {
    println!("== {name} (speedup vs 1-proc delay) ==");
    let mut records = Vec::new();
    let mut measure = |p: usize, lib: &'static str| {
        let m = run(p, lib);
        records.push(Record::from_measurement(name, lib, n, &m));
        m.timing.min
    };
    let base = measure(1, "delay");
    let mut t = Table::new(vec!["P", "delay", "rad", "array"]);
    for &p in procs {
        let d = base / measure(p, "delay");
        let r = base / measure(p, "rad");
        let a = base / measure(p, "array");
        t.row(vec![
            p.to_string(),
            format!("{d:.2}"),
            format!("{r:.2}"),
            format!("{a:.2}"),
        ]);
    }
    println!("{}", t.render());
    if let Some(rep) = json {
        for rec in records {
            rep.push(rec);
        }
    }
}

fn main() {
    let scale = Scale::from_args();
    let proto = scale.protocol();
    let json_path = arg_value("--json");
    let capture = json_path.is_some();
    let procs = proc_sweep(max_procs());
    println!(
        "Figure 15 — scalability (scale: {:?}, procs {:?})",
        scale, procs
    );
    println!();

    let mut rep = JsonReport::new("fig15", scale.name());

    {
        let log2_nodes = if scale == Scale::Full { 18 } else { 15 };
        let g = bfs::generate(bfs::Params {
            scale: log2_nodes,
            ..Default::default()
        });
        speedup_table("bfs", 1usize << log2_nodes, &procs, Some(&mut rep), |p, lib| {
            match lib {
                "delay" => measure_full(p, proto, capture, || bfs::run_delay(&g, 0)),
                "rad" => measure_full(p, proto, capture, || bfs::run_rad(&g, 0)),
                _ => measure_full(p, proto, capture, || bfs::run_array(&g, 0)),
            }
        });
    }

    {
        let n = scale.size(2_000_000);
        speedup_table("primes", n, &procs, Some(&mut rep), |p, lib| match lib {
            "delay" => measure_full(p, proto, capture, || primes::run_delay(n)),
            "rad" => measure_full(p, proto, capture, || primes::run_rad(n)),
            _ => measure_full(p, proto, capture, || primes::run_array(n)),
        });
    }

    println!(
        "Expected shape (paper): the delay curve sits above rad, which sits \
         above array, with the gap widening as P grows."
    );

    if let Some(path) = json_path {
        match rep.write(&path) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
