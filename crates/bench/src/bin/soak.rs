//! Resource-governance soak: hammer a small pool with concurrent
//! governed pipelines under worker-crash injection, and hold the
//! overload claims for the whole run:
//!
//! - every deadline-budgeted run comes back within **2x its deadline**;
//! - every memory-budgeted run refuses with `Exceeded::Memory`, never a
//!   partial result;
//! - every sufficiently-budgeted run returns the exact ungoverned value
//!   (crashes and shedding degrade parallelism, never correctness);
//! - every retry-legged run (a transient block fault injected roughly
//!   every 100th leg, under `RetryPolicy`) returns the exact unfaulted
//!   value with zero quarantines — block recovery salvages the job
//!   (`recovered_jobs > 0` over the round);
//! - workers killed mid-run are respawned (`PoolStats::respawns`);
//! - the counting allocator's live-byte gauge returns to its pre-soak
//!   baseline at exit — nothing governed leaks.
//!
//! Flags: `--seconds <n>` (duration, default 60), `--procs <p>` (pool
//! width, default 3), `--json <path>` (machine-readable results in the
//! `bds-bench/v2` schema, with the `gov` counter block populated).
//!
//! Exit status is non-zero if any claim is violated, so CI can run this
//! binary directly as a gate.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bds_bench::json::{GovCounters, JsonReport, Record, RecoveryCounters};
use bds_bench::{arg_value, seed::splitmix64};
use bds_metrics::{heap_stats, CountingAlloc};
use bds_pool::{govern::trip_counts, recovery_counts, Budget, Exceeded, Pool, RetryPolicy};
use bds_seq::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One driver's share of the hammering: cycle deadline, memory, and
/// sufficient-budget legs until `stop`, recording violations instead of
/// panicking (the panic hook is silenced for the whole soak).
struct Driver<'a> {
    stop: &'a AtomicBool,
    violations: &'a Mutex<Vec<String>>,
    deadline_runs: &'a Mutex<Vec<f64>>,
    runs: &'a AtomicU64,
    /// Retry legs taken across all drivers; every `FAULT_EVERY`-th one
    /// injects a transient block fault.
    retry_legs: &'a AtomicU64,
    /// Retry legs that actually carried an injected fault.
    faulted_legs: &'a AtomicU64,
}

/// One in `FAULT_EVERY` retry legs carries a transient block fault.
const FAULT_EVERY: u64 = 100;

/// Deadline for the deadline leg. Generous relative to the poll
/// interval on purpose: the soak oversubscribes the machine (drivers +
/// workers + watchdog on however few cores CI has), so the absolute
/// scheduling jitter can reach tens of milliseconds — the claim under
/// test is the 2x *ratio* under overload. The tight-latency claim (10 ms
/// deadline, 2x bound, quiet machine) is pinned by `tests/governed.rs`.
const DEADLINE: Duration = Duration::from_millis(100);

impl Driver<'_> {
    fn run(&self, pool: &Pool, lane: u64) {
        let want_sum: u64 = (0..100_000u64).sum();
        let mut k = lane;
        while !self.stop.load(Ordering::Relaxed) {
            self.runs.fetch_add(1, Ordering::Relaxed);
            match k % 4 {
                0 => self.deadline_leg(pool),
                1 => self.memory_leg(pool),
                2 => self.sufficient_leg(pool, want_sum),
                _ => self.retry_leg(pool, want_sum),
            }
            k += 1;
        }
    }

    fn flag(&self, msg: String) {
        self.violations.lock().unwrap().push(msg);
    }

    /// A deadline over a pipeline that would take seconds: must refuse
    /// as `Deadline` within 2x the deadline. The input must stay far
    /// (>10x) above what the host can reduce inside the deadline, or
    /// the leg races its own completion: complete-result-wins would
    /// legitimately return `Ok` just under the wire, and near-complete
    /// runs drag the cancellation observation past the 2x bound.
    fn deadline_leg(&self, pool: &Pool) {
        let started = Instant::now();
        let r = pool.install(|| {
            tabulate(2_000_000_000usize, |i| (i as u64).wrapping_mul(31).wrapping_add(7))
                .reduce_governed(Budget::unlimited().with_deadline(DEADLINE), 0, |a, b| {
                    a.wrapping_add(b)
                })
        });
        let elapsed = started.elapsed();
        if r != Err(Exceeded::Deadline) {
            self.flag(format!("deadline leg returned {r:?}, expected Err(Deadline)"));
        }
        if elapsed > DEADLINE * 2 {
            self.flag(format!("deadline overshoot: {elapsed:?} > 2x {DEADLINE:?}"));
        }
        self.deadline_runs.lock().unwrap().push(elapsed.as_secs_f64());
    }

    /// A 64 KiB budget under a ~8 MB materialization: must refuse as
    /// `Memory`.
    fn memory_leg(&self, pool: &Pool) {
        let r = pool.install(|| {
            tabulate(1_000_000usize, |i| i as u64)
                .map(|x| x.wrapping_mul(3))
                .to_vec_governed(Budget::unlimited().with_mem_bytes(64 * 1024))
        });
        if r != Err(Exceeded::Memory) {
            let brief = r.as_ref().map(Vec::len);
            self.flag(format!("memory leg returned {brief:?}, expected Err(Memory)"));
        }
    }

    /// Generous budgets change nothing: exact ungoverned value, even
    /// while workers are being crashed and calls shed around this run.
    fn sufficient_leg(&self, pool: &Pool, want: u64) {
        let r = pool.install(|| {
            tabulate(100_000usize, |i| i as u64).reduce_governed(
                Budget::unlimited()
                    .with_deadline(Duration::from_secs(60))
                    .with_mem_bytes(64 << 20),
                0,
                |a, b| a + b,
            )
        });
        if r != Ok(want) {
            self.flag(format!("sufficient leg returned {r:?}, expected Ok({want})"));
        }
    }

    /// A retried pipeline: every `FAULT_EVERY`-th such leg injects a
    /// one-shot transient block fault, which `RetryPolicy` must absorb
    /// with a single block retry — the exact unfaulted value comes back,
    /// never a quarantine, a lost result, or a partial one. The fault
    /// token is leg-local so crashes and shedding around this run cannot
    /// pile multiple fires onto one attempt and escalate it to a
    /// quarantine.
    fn retry_leg(&self, pool: &Pool, want: u64) {
        let nth = self.retry_legs.fetch_add(1, Ordering::Relaxed);
        let faulted = nth.is_multiple_of(FAULT_EVERY);
        if faulted {
            self.faulted_legs.fetch_add(1, Ordering::Relaxed);
        }
        let fires = AtomicU64::new(u64::from(faulted));
        let r = pool.install(|| {
            bds_pool::run_recovered(RetryPolicy::default(), || {
                tabulate(100_000usize, |i| {
                    if i == 500
                        && fires
                            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                                left.checked_sub(1)
                            })
                            .is_ok()
                    {
                        panic!("soak: injected transient block fault");
                    }
                    i as u64
                })
                .reduce(0, |a, b| a + b)
            })
        });
        if r != Ok(want) {
            self.flag(format!(
                "retry leg (faulted={faulted}) returned {r:?}, expected Ok({want})"
            ));
        }
    }
}

/// Everything one soak round leaves behind, reduced to scalars (plus the
/// violation strings, which are empty — and therefore heap-free — on a
/// clean round).
struct Outcome {
    violations: Vec<String>,
    gov: GovCounters,
    recovery: RecoveryCounters,
    faulted_legs: u64,
    sched: bds_pool::WorkerStats,
    crashes: u64,
    total_runs: u64,
    deadline_legs: usize,
    mean_s: f64,
    min_s: f64,
    stddev_s: f64,
    worst_s: f64,
}

/// One full soak round: fresh pool, `procs + 1` concurrent drivers, a
/// crash injected every ~250 ms, all bookkeeping freed before return.
///
/// The warm-up round and the measured round both go through here, so
/// every lazily-initialized process global (the deadline watchdog and
/// its entry vector, the unwind path's one-time state, the thread
/// parker's global table at full thread count) is allocated before the
/// measured round snapshots its leak baseline.
fn soak_round(seconds: u64, procs: usize) -> Outcome {
    let trips_before = trip_counts();
    let recovery_before = recovery_counts();
    let pool = Pool::new(procs);
    let stop = AtomicBool::new(false);
    let violations = Mutex::new(Vec::new());
    let deadline_runs = Mutex::new(Vec::new());
    let runs = AtomicU64::new(0);
    let crashes = AtomicU64::new(0);
    let retry_legs = AtomicU64::new(0);
    let faulted_legs = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for lane in 0..(procs as u64 + 1) {
            let driver = Driver {
                stop: &stop,
                violations: &violations,
                deadline_runs: &deadline_runs,
                runs: &runs,
                retry_legs: &retry_legs,
                faulted_legs: &faulted_legs,
            };
            let pool = &pool;
            scope.spawn(move || driver.run(pool, lane));
        }
        // Crash injector: kill a pseudo-random worker every ~250 ms.
        let deadline = Instant::now() + Duration::from_secs(seconds);
        let mut rng = 0x5eed_50a4_u64 ^ seconds;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(250));
            rng = splitmix64(rng);
            pool.inject_worker_crash((rng % procs as u64) as usize);
            crashes.fetch_add(1, Ordering::Relaxed);
        }
        stop.store(true, Ordering::Relaxed);
    });

    let stats = pool.stats();
    let trips = trip_counts();
    let gov = GovCounters {
        sheds: stats.sheds,
        respawns: stats.respawns,
        deadline_trips: trips.deadline - trips_before.deadline,
        mem_trips: trips.memory - trips_before.memory,
    };
    let sched = stats.total();
    drop(pool);

    let lat = deadline_runs.into_inner().unwrap();
    let (mean_s, min_s, stddev_s) = summarize(&lat);
    let worst_s = lat.iter().cloned().fold(0.0f64, f64::max);
    let deadline_legs = lat.len();
    drop(lat);

    let crashes = crashes.load(Ordering::Relaxed);
    let recovery = RecoveryCounters::from(recovery_counts().saturating_sub(&recovery_before));
    let faulted = faulted_legs.load(Ordering::Relaxed);
    let mut violations = violations.into_inner().unwrap();
    if gov.respawns == 0 && crashes > 0 {
        violations.push("no worker respawn recorded despite injected crashes".into());
    }
    if gov.deadline_trips == 0 || gov.mem_trips == 0 {
        violations.push(format!(
            "budget trips not exercised: deadline={}, memory={}",
            gov.deadline_trips, gov.mem_trips
        ));
    }
    if recovery.quarantines != 0 {
        violations.push(format!(
            "transient faults must never quarantine: {} quarantines over the round",
            recovery.quarantines
        ));
    }
    if faulted > 0 && recovery.recovered_jobs == 0 {
        violations.push(format!(
            "{faulted} faulted retry legs but zero recovered jobs — block recovery dead"
        ));
    }
    Outcome {
        violations,
        gov,
        recovery,
        faulted_legs: faulted,
        sched,
        crashes,
        total_runs: runs.load(Ordering::Relaxed),
        deadline_legs,
        mean_s,
        min_s,
        stddev_s,
        worst_s,
    }
}

fn main() {
    // Cancellation unwinds workers with sentinel panics; the default
    // hook would symbolize a backtrace for each (slow, and its symbol
    // cache stays live, corrupting the leak baseline). Silence it for
    // the whole soak, before the baseline snapshot.
    std::panic::set_hook(Box::new(|_| {}));

    let seconds: u64 = arg_value("--seconds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
        .max(1);
    let procs: usize = arg_value("--procs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(2);
    // Cap in-pool concurrency so excess governed calls exercise the
    // shedding path (degraded in-caller execution) instead of queueing,
    // which also keeps the 2x deadline bound sharp: an admitted run
    // never waits behind a backlog. Overridable from the environment.
    if std::env::var_os("BDS_MAX_INFLIGHT").is_none() {
        std::env::set_var("BDS_MAX_INFLIGHT", "1");
    }

    // Warm-up round: identical code path, results discarded.
    eprintln!("soak: warm-up round (1s on a {procs}-worker pool)");
    drop(soak_round(1, procs));
    bds_metrics::reset_peak();
    let live_before = quiescent_live();

    eprintln!("soak: {seconds}s on a {procs}-worker pool, {} drivers", procs + 1);
    let out = soak_round(seconds, procs);
    let peak = heap_stats().peak_since_reset;

    let mut failures = out.violations;
    // The violation strings above are live heap too, so the leak check
    // is only meaningful on an otherwise-clean round — which is the case
    // that matters: on a dirty round the exit status is already failing.
    if failures.is_empty() {
        let live_after = settle_to(live_before);
        if live_after != live_before {
            failures.push(format!(
                "leak: {} live bytes at exit ({live_before} -> {live_after})",
                live_after.saturating_sub(live_before)
            ));
        }
    }

    eprintln!(
        "soak: {} governed runs ({} deadline-legged, mean {:.1} ms, worst {:.1} ms), \
         {} crashes injected, {} respawns, {} sheds, trips: {} deadline / {} memory",
        out.total_runs,
        out.deadline_legs,
        out.mean_s * 1e3,
        out.worst_s * 1e3,
        out.crashes,
        out.gov.respawns,
        out.gov.sheds,
        out.gov.deadline_trips,
        out.gov.mem_trips,
    );
    eprintln!(
        "soak: recovery: {} faulted retry legs, {} block retries, {} recovered jobs, \
         {} quarantines",
        out.faulted_legs,
        out.recovery.block_retries,
        out.recovery.recovered_jobs,
        out.recovery.quarantines,
    );

    if let Some(path) = arg_value("--json") {
        let mut rep = JsonReport::new("soak", &format!("{seconds}s"));
        rep.push(Record {
            op: "soak".into(),
            library: "delay".into(),
            n: out.total_runs as usize,
            procs,
            policy: None,
            mean_s: out.mean_s,
            min_s: out.min_s,
            stddev_s: out.stddev_s,
            repeats: out.deadline_legs,
            peak_bytes: peak,
            block_size: 0,
            num_blocks: 0,
            sched: Some(out.sched),
            gov: Some(out.gov),
            svc: None,
            plan: None,
            recovery: Some(out.recovery),
        });
        rep.write(&path).expect("writing soak JSON");
        eprintln!("soak: wrote {path}");
    }

    if failures.is_empty() {
        eprintln!("soak: clean shutdown, all claims held");
    } else {
        // Report every distinct violation once (the same overshoot can
        // repeat thousands of times; cap the noise).
        failures.truncate(32);
        for f in &failures {
            eprintln!("soak: VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}

/// The live-byte gauge once it has stopped moving: a worker that crashed
/// on the injector's final tick can still be exiting (releasing its
/// thread bookkeeping) after the pool is dropped, so an instantaneous
/// read races it. Waits for a 250 ms window with no change, bounded at
/// 3 s.
fn quiescent_live() -> usize {
    let mut last = heap_stats().live;
    let mut stable_since = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(3);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
        let live = heap_stats().live;
        if live != last {
            last = live;
            stable_since = Instant::now();
        } else if stable_since.elapsed() >= Duration::from_millis(250) {
            break;
        }
    }
    last
}

/// Wait (up to 2 s) for the live-byte gauge to return to `target`,
/// returning the last reading — `target` on a clean run, the leaked
/// level otherwise.
fn settle_to(target: usize) -> usize {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let live = heap_stats().live;
        if live == target || Instant::now() >= deadline {
            return live;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Mean / min / population stddev of a latency sample, seconds.
fn summarize(xs: &[f64]) -> (f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, min, var.sqrt())
}
