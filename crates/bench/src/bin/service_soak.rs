//! Service soak: sustain four tenants × 256 outstanding requests each
//! (1024 concurrent governed pipelines) against a `bds_service::Service`
//! while a chaos thread crashes a pool worker every 250 ms, and hold the
//! delivery claims for the whole run:
//!
//! - **no lost responses** — every accepted ticket resolves (a lost one
//!   would hang the drain and trip the watchdog below);
//! - **no duplicated responses** — `bds-service`'s exactly-once tripwire
//!   panics the run if a ticket completes twice;
//! - **no partial responses** — every `Ok` is bit-identical to the
//!   pipeline's known value;
//! - **typed refusals only** — tight-deadline requests either fail fast
//!   at admission, trip as `Exceeded::Deadline`, or deliver the full
//!   value; nothing else is acceptable;
//! - **the admission ledger balances** — per tenant,
//!   `submitted == (admitted == completed) + rejected` at quiescence;
//! - **no tenant starves** — every tenant's completion share is within
//!   2x of its fair share, both bounds.
//!
//! Flags: `--seconds <n>` (duration, default 30), `--procs <p>` (pool
//! width, default 3), `--json <path>` (machine-readable results in the
//! `bds-bench/v2` schema with the `svc` block populated: sustained QPS
//! and p50/p99 submit-to-response latency next to the gov counters).
//!
//! Exit status is non-zero if any claim is violated, so CI can run this
//! binary directly as a gate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bds_bench::arg_value;
use bds_bench::json::{GovCounters, JsonReport, Record, SvcCounters};
use bds_pool::govern::trip_counts;
use bds_seq::prelude::*;
use bds_service::{
    Budget, Exceeded, Rejected, Service, ServiceConfig, ServiceError, Ticket,
};

/// Outstanding requests each tenant's driver keeps in flight.
const WINDOW: usize = 256;
/// Tenants (and driver threads).
const TENANTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
/// Every Nth request runs under a tight deadline instead of an
/// unlimited budget, exercising fail-fast admission and in-flight
/// deadline trips under load.
const TIGHT_EVERY: u64 = 16;
/// The tight deadline. Far below the queueing delay of a 1024-deep
/// backlog on purpose: most of these must be refused or tripped, and
/// the claim is that the refusal is always clean and typed.
const TIGHT_DEADLINE: Duration = Duration::from_millis(2);
/// Problem size of the pipeline each request runs.
const N: usize = 4096;

/// The one pipeline every request executes, with a value known in
/// advance so a partial or corrupted response is detectable.
fn expected_value() -> u64 {
    (0..N as u64).map(|i| i.wrapping_mul(31).wrapping_add(7)).sum()
}

fn submit_one(
    svc: &Service,
    tenant: bds_service::Tenant,
    budget: Budget,
) -> Result<Ticket<u64>, Rejected> {
    tabulate(N, |i| (i as u64).wrapping_mul(31).wrapping_add(7))
        .submit_reduce(svc, tenant, budget, 0, |a, b| a.wrapping_add(b))
}

/// One in-flight request as the driver tracks it.
struct Outstanding {
    submitted_at: Instant,
    tight: bool,
    ticket: Ticket<u64>,
}

struct DriverOut {
    latencies_s: Vec<f64>,
    violations: Vec<String>,
}

/// Drive one tenant: keep [`WINDOW`] requests outstanding until `stop`,
/// then drain. Latency is measured submit-to-response, so it includes
/// queueing — the number a caller of the service would see.
fn drive(
    svc: &Service,
    name: &str,
    stop: &AtomicBool,
    high_water: &AtomicU64,
) -> DriverOut {
    let tenant = svc.tenant(name);
    let expected = expected_value();
    let mut window: VecDeque<Outstanding> = VecDeque::with_capacity(WINDOW);
    let mut out = DriverOut {
        latencies_s: Vec::new(),
        violations: Vec::new(),
    };
    let mut k = 0u64;
    let flag = |violations: &mut Vec<String>, msg: String| {
        if violations.len() < 64 {
            violations.push(format!("tenant {name}: {msg}"));
        }
    };
    loop {
        let draining = stop.load(Ordering::Relaxed);
        if !draining && window.len() < WINDOW {
            let tight = k % TIGHT_EVERY == TIGHT_EVERY - 1;
            let budget = if tight {
                Budget::unlimited().with_deadline(TIGHT_DEADLINE)
            } else {
                Budget::unlimited()
            };
            k += 1;
            match submit_one(svc, tenant, budget) {
                Ok(ticket) => {
                    window.push_back(Outstanding {
                        submitted_at: Instant::now(),
                        tight,
                        ticket,
                    });
                    // Track the fleet-wide concurrent high water mark
                    // (outstanding = accepted and not yet resolved).
                    let total: u64 = window.len() as u64;
                    let mut seen = high_water.load(Ordering::Relaxed);
                    while total > seen {
                        match high_water.compare_exchange_weak(
                            seen,
                            total,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(cur) => seen = cur,
                        }
                    }
                    continue;
                }
                Err(Rejected::Deadline) if tight => continue, // clean fail-fast
                Err(Rejected::QueueFull) => {
                    // Transient backpressure: fall through and retire
                    // the oldest request before re-offering.
                }
                Err(other) => {
                    flag(&mut out.violations, format!("unexpected rejection: {other:?}"));
                    continue;
                }
            }
        }
        let Some(oldest) = window.pop_front() else {
            if draining {
                return out;
            }
            continue;
        };
        let response = oldest.ticket.wait();
        out.latencies_s
            .push(oldest.submitted_at.elapsed().as_secs_f64());
        match response {
            Ok(v) if v == expected => {}
            Ok(v) => flag(
                &mut out.violations,
                format!("partial/corrupt value: got {v:#x}, want {expected:#x}"),
            ),
            Err(ServiceError::Exceeded(Exceeded::Deadline)) if oldest.tight => {}
            Err(e) => flag(&mut out.violations, format!("unexpected error: {e}")),
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    // Crash injection unwinds workers with sentinel panics; the default
    // hook would print a backtrace for each. Silence it for the run.
    std::panic::set_hook(Box::new(|_| {}));

    let seconds: u64 = arg_value("--seconds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
        .max(1);
    let procs: usize = arg_value("--procs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(2);

    let svc = Service::new(ServiceConfig {
        workers: procs,
        // Deep enough that a full driver window fits queued; QueueFull
        // then only appears transiently, as designed backpressure.
        queue_capacity: 2 * WINDOW,
        max_concurrent: 2 * procs,
        quantum: 1,
        breaker: bds_service::BreakerConfig::default(),
    });
    let trips_before = trip_counts();

    eprintln!(
        "service_soak: {seconds}s, {} tenants x {WINDOW} outstanding on {procs} workers, \
         crash every 250 ms",
        TENANTS.len(),
    );

    let stop = AtomicBool::new(false);
    let high_water = AtomicU64::new(0);
    let crashes = AtomicU64::new(0);
    let started = Instant::now();
    let outs: Vec<DriverOut> = std::thread::scope(|scope| {
        let chaos = scope.spawn(|| {
            let mut k = 0usize;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(250));
                svc.inject_worker_crash(k % procs);
                crashes.fetch_add(1, Ordering::Relaxed);
                k += 1;
            }
        });
        let (svc, stop, high_water) = (&svc, &stop, &high_water);
        let drivers: Vec<_> = TENANTS
            .iter()
            .map(|&name| scope.spawn(move || drive(svc, name, stop, high_water)))
            .collect();
        std::thread::sleep(Duration::from_secs(seconds));
        stop.store(true, Ordering::Relaxed);
        let outs = drivers.into_iter().map(|d| d.join().unwrap()).collect();
        chaos.join().unwrap();
        outs
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut failures: Vec<String> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    for out in outs {
        failures.extend(out.violations);
        latencies.extend(out.latencies_s);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());

    // Quiescent ledger: every driver has drained its window, so per
    // tenant everything submitted was either rejected at admission or
    // delivered through its ticket.
    let stats = svc.stats();
    let mut tenant_completions: Vec<(String, u64)> = Vec::new();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut rejected = 0u64;
    for t in &stats.tenants {
        if t.submitted != t.completed + t.rejected() {
            failures.push(format!(
                "tenant {}: ledger out of balance: {} submitted != {} completed + {} rejected",
                t.name,
                t.submitted,
                t.completed,
                t.rejected(),
            ));
        }
        if t.admitted != t.completed {
            failures.push(format!(
                "tenant {}: lost responses: {} admitted but {} completed",
                t.name, t.admitted, t.completed,
            ));
        }
        submitted += t.submitted;
        completed += t.completed;
        rejected += t.rejected();
        tenant_completions.push((t.name.clone(), t.completed));
    }

    // Fairness: with identical offered load, each tenant's completion
    // share must be within 2x of fair share, both bounds.
    let fair = completed as f64 / TENANTS.len() as f64;
    for (name, done) in &tenant_completions {
        let share = *done as f64;
        if share < fair / 2.0 || share > fair * 2.0 {
            failures.push(format!(
                "tenant {name} starved or hogged: {share} completions vs fair share {fair:.0}"
            ));
        }
    }

    let concurrent_per_tenant = high_water.load(Ordering::Relaxed);
    // Each driver independently reached its high water; the fleet claim
    // (>= 1k concurrent) holds when every window filled at least once.
    if concurrent_per_tenant < WINDOW as u64 {
        failures.push(format!(
            "offered concurrency never reached the target: per-tenant high water \
             {concurrent_per_tenant} < {WINDOW}"
        ));
    }
    if stats.respawns == 0 && crashes.load(Ordering::Relaxed) > 0 {
        failures.push("crashes were injected but no worker respawned".into());
    }

    let trips = trip_counts();
    let gov = GovCounters {
        sheds: stats.sheds,
        respawns: stats.respawns,
        deadline_trips: trips.deadline.saturating_sub(trips_before.deadline),
        mem_trips: trips.memory.saturating_sub(trips_before.memory),
    };
    let qps = completed as f64 / elapsed;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };

    eprintln!(
        "service_soak: {submitted} submitted, {completed} completed, {rejected} rejected; \
         {:.0} qps, p50 {:.1} ms, p99 {:.1} ms; {} crashes, {} respawns, \
         trips: {} deadline / {} memory",
        qps,
        p50 * 1e3,
        p99 * 1e3,
        crashes.load(Ordering::Relaxed),
        gov.respawns,
        gov.deadline_trips,
        gov.mem_trips,
    );

    if let Some(path) = arg_value("--json") {
        let mut rep = JsonReport::new("service_soak", &format!("{seconds}s"));
        rep.push(Record {
            op: "service_soak".into(),
            library: "service".into(),
            n: N,
            procs,
            policy: None,
            mean_s: mean,
            min_s: percentile(&latencies, 0.0),
            stddev_s: 0.0,
            repeats: latencies.len(),
            peak_bytes: 0,
            block_size: 0,
            num_blocks: 0,
            sched: Some(stats.total()),
            gov: Some(gov),
            svc: Some(SvcCounters {
                qps,
                p50_s: p50,
                p99_s: p99,
                submitted,
                completed,
                rejected,
                tenants: tenant_completions,
            }),
        });
        rep.write(&path).expect("writing service_soak JSON");
        eprintln!("service_soak: wrote {path}");
    }

    drop(svc);
    if failures.is_empty() {
        eprintln!("service_soak: clean shutdown, all claims held");
    } else {
        failures.truncate(32);
        for f in &failures {
            eprintln!("service_soak: VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}
