//! Service soak: sustain four tenants × 256 outstanding requests each
//! (1024 concurrent governed pipelines) against a `bds_service::Service`
//! while a chaos thread crashes a pool worker every 250 ms, and hold the
//! delivery claims for the whole run:
//!
//! - **no lost responses** — every accepted ticket resolves (a lost one
//!   would hang the drain and trip the watchdog below);
//! - **no duplicated responses** — `bds-service`'s exactly-once tripwire
//!   panics the run if a ticket completes twice;
//! - **no partial responses** — every `Ok` is bit-identical to the
//!   pipeline's known value;
//! - **typed refusals only** — tight-deadline requests either fail fast
//!   at admission, trip as `Exceeded::Deadline`, or deliver the full
//!   value; nothing else is acceptable;
//! - **the admission ledger balances** — per tenant,
//!   `submitted == (admitted == completed) + rejected` at quiescence;
//! - **no tenant starves** — every tenant's completion share is within
//!   2x of its fair share, both bounds;
//! - **the plan cache stays warm** — each tenant cycles through
//!   [`SHAPES`] distinct pipeline shapes resolved through a per-tenant
//!   `bds_plan::TenantPlanner`, so after one optimizer run per shape
//!   every later submission must hit the cache: the per-tenant hit rate
//!   at quiescence must be ≥ 0.9 (it is (n − SHAPES) / n in practice);
//! - **block recovery salvages faulted requests** — every tenant runs
//!   under a [`RetryPolicy`], and roughly every 100th request carries a
//!   one-shot transient block fault; each such admitted request must
//!   still deliver its exact value (covered by the no-partial claim),
//!   with `recovered_jobs > 0` and zero quarantines over the run.
//!
//! Flags: `--seconds <n>` (duration, default 30), `--procs <p>` (pool
//! width, default 3), `--no-plan-cache` (A/B leg: plan every request
//! from a cold planner, skipping the hit-rate claim), `--json <path>`
//! (machine-readable results in the `bds-bench/v2` schema with the
//! `svc` and `plan` blocks populated: sustained QPS and p50/p99
//! submit-to-response latency next to the gov counters and the
//! aggregated plan-cache hits/misses).
//!
//! Exit status is non-zero if any claim is violated, so CI can run this
//! binary directly as a gate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bds_bench::{arg_value, has_flag};
use bds_bench::json::{
    GovCounters, JsonReport, PlanCounters, Record, RecoveryCounters, SvcCounters,
};
use bds_plan::{submit_reduce, Pipe, TenantPlanner};
use bds_pool::govern::trip_counts;
use bds_pool::{recovery_counts, RetryPolicy};
use bds_service::{
    Budget, Exceeded, Rejected, Service, ServiceConfig, ServiceError, Ticket,
};

/// Outstanding requests each tenant's driver keeps in flight.
const WINDOW: usize = 256;
/// Tenants (and driver threads).
const TENANTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
/// Every Nth request runs under a tight deadline instead of an
/// unlimited budget, exercising fail-fast admission and in-flight
/// deadline trips under load.
const TIGHT_EVERY: u64 = 16;
/// The tight deadline. Far below the queueing delay of a 1024-deep
/// backlog on purpose: most of these must be refused or tripped, and
/// the claim is that the refusal is always clean and typed.
const TIGHT_DEADLINE: Duration = Duration::from_millis(2);
/// Problem size of the pipeline each request runs.
const N: usize = 4096;
/// Distinct pipeline shapes each tenant cycles through. Shape `k % 4`
/// is rebuilt from scratch (fresh closures) for every request, so plan
/// reuse is purely shape-keyed — exactly the production pattern the
/// plan cache exists for.
const SHAPES: u64 = 4;
/// Plans each tenant's cache may hold — comfortably above [`SHAPES`],
/// so a warm run never evicts.
const PLAN_CAPACITY: usize = 8;
/// Roughly one in `FAULT_EVERY` requests carries a transient block
/// fault (every `FAULT_EVERY / SHAPES`-th shape-0 submission).
const FAULT_EVERY: u64 = 100;
/// The element whose block carries the injected fault.
const FAULT_ELEM: usize = 1234;

/// Build shape `k`'s pipeline, fresh closures every call. The shapes
/// exercise the optimizer's main rewrites under load: plain tabulate
/// (sequential-vs-parallel mode pick), a fusable map+filter run, a
/// gather-collapsible rev/skip/take cut chain, and a map+scan prefix.
fn build_pipe(shape: u64) -> Pipe<u64> {
    match shape % SHAPES {
        0 => Pipe::tabulate(N, |i| (i as u64).wrapping_mul(31).wrapping_add(7)),
        1 => Pipe::tabulate(N, |i| i as u64)
            .map(|x| x.wrapping_mul(0x9e37_79b9))
            .filter(|&x| x % 3 != 0),
        2 => Pipe::tabulate(N, |i| i as u64).rev().skip(7).take(N / 2),
        _ => Pipe::tabulate(N, |i| i as u64)
            .map(|x| x ^ 0x5bd1)
            .scan(0, |a, b| a.wrapping_add(b)),
    }
}

/// The known reduction value of each shape, so a partial or corrupted
/// response is detectable. Mirrors [`build_pipe`] with plain iterators.
fn expected_values() -> [u64; SHAPES as usize] {
    let v0 = (0..N as u64)
        .map(|i| i.wrapping_mul(31).wrapping_add(7))
        .fold(0u64, u64::wrapping_add);
    let v1 = (0..N as u64)
        .map(|x| x.wrapping_mul(0x9e37_79b9))
        .filter(|&x| x % 3 != 0)
        .fold(0u64, u64::wrapping_add);
    let v2 = (0..N as u64)
        .rev()
        .skip(7)
        .take(N / 2)
        .fold(0u64, u64::wrapping_add);
    // Shape 3 reduces the *exclusive* prefix scan of the mapped input.
    let mut acc = 0u64;
    let mut v3 = 0u64;
    for x in (0..N as u64).map(|x| x ^ 0x5bd1) {
        v3 = v3.wrapping_add(acc);
        acc = acc.wrapping_add(x);
    }
    [v0, v1, v2, v3]
}

/// Shape 0's pipeline with a one-shot transient block fault riding the
/// closure: the first time [`FAULT_ELEM`] streams, it panics; the block
/// retry under the tenant's [`RetryPolicy`] recomputes it cleanly, so
/// the delivered value is identical to the unfaulted shape 0. The fire
/// token is request-local by construction (it is captured in this
/// request's fresh closure), so concurrent requests and
/// rejected-at-admission submissions can never pool fires into one
/// block and escalate a transient fault to a quarantine. The shape key
/// is unchanged — plan reuse keys on structure, never closure identity.
fn build_faulted_pipe() -> Pipe<u64> {
    let fires = Arc::new(AtomicU64::new(1));
    Pipe::tabulate(N, move |i| {
        if i == FAULT_ELEM
            && fires
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| left.checked_sub(1))
                .is_ok()
        {
            panic!("service_soak: injected transient block fault");
        }
        (i as u64).wrapping_mul(31).wrapping_add(7)
    })
}

/// Submit shape `shape`'s pipeline. With a shared planner the plan
/// comes from the tenant's warm cache; without one (`--no-plan-cache`)
/// every request plans from a cold single-slot planner — the A/B
/// baseline that pays the optimizer on every submission.
fn submit_one(
    svc: &Service,
    tenant: bds_service::Tenant,
    planner: Option<&TenantPlanner>,
    name: &str,
    budget: Budget,
    shape: u64,
    fault: bool,
) -> Result<Ticket<u64>, Rejected> {
    let pipe = if fault { build_faulted_pipe() } else { build_pipe(shape) };
    match planner {
        Some(p) => submit_reduce(svc, tenant, p, budget, pipe, 0, |a, b| a.wrapping_add(b)),
        None => {
            let cold = TenantPlanner::new(svc, name, 1);
            submit_reduce(svc, tenant, &cold, budget, pipe, 0, |a, b| a.wrapping_add(b))
        }
    }
}

/// One in-flight request as the driver tracks it.
struct Outstanding {
    submitted_at: Instant,
    tight: bool,
    expected: u64,
    ticket: Ticket<u64>,
}

struct DriverOut {
    latencies_s: Vec<f64>,
    violations: Vec<String>,
}

/// Drive one tenant: keep [`WINDOW`] requests outstanding until `stop`,
/// then drain. Latency is measured submit-to-response, so it includes
/// queueing — the number a caller of the service would see.
fn drive(
    svc: &Service,
    name: &str,
    planner: Option<&TenantPlanner>,
    stop: &AtomicBool,
    high_water: &AtomicU64,
    faulted: &AtomicU64,
) -> DriverOut {
    let tenant = svc.tenant(name);
    let expected = expected_values();
    let mut window: VecDeque<Outstanding> = VecDeque::with_capacity(WINDOW);
    let mut out = DriverOut {
        latencies_s: Vec::new(),
        violations: Vec::new(),
    };
    let mut k = 0u64;
    let mut shape0_subs = 0u64;
    let flag = |violations: &mut Vec<String>, msg: String| {
        if violations.len() < 64 {
            violations.push(format!("tenant {name}: {msg}"));
        }
    };
    loop {
        let draining = stop.load(Ordering::Relaxed);
        if !draining && window.len() < WINDOW {
            let tight = k % TIGHT_EVERY == TIGHT_EVERY - 1;
            let budget = if tight {
                Budget::unlimited().with_deadline(TIGHT_DEADLINE)
            } else {
                Budget::unlimited()
            };
            let shape = k % SHAPES;
            k += 1;
            // Every `FAULT_EVERY / SHAPES`-th shape-0 submission carries
            // the transient fault (tight requests never land on shape 0,
            // so a faulted request is never deliberately deadline-tripped
            // and must deliver its full value).
            let fault = !tight && shape == 0 && {
                shape0_subs += 1;
                (shape0_subs - 1).is_multiple_of(FAULT_EVERY / SHAPES)
            };
            match submit_one(svc, tenant, planner, name, budget, shape, fault) {
                Ok(ticket) => {
                    if fault {
                        faulted.fetch_add(1, Ordering::Relaxed);
                    }
                    window.push_back(Outstanding {
                        submitted_at: Instant::now(),
                        tight,
                        expected: expected[(shape % SHAPES) as usize],
                        ticket,
                    });
                    // Track the fleet-wide concurrent high water mark
                    // (outstanding = accepted and not yet resolved).
                    let total: u64 = window.len() as u64;
                    let mut seen = high_water.load(Ordering::Relaxed);
                    while total > seen {
                        match high_water.compare_exchange_weak(
                            seen,
                            total,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(cur) => seen = cur,
                        }
                    }
                    continue;
                }
                Err(Rejected::Deadline) if tight => continue, // clean fail-fast
                Err(Rejected::QueueFull) => {
                    // Transient backpressure: fall through and retire
                    // the oldest request before re-offering.
                }
                Err(other) => {
                    flag(&mut out.violations, format!("unexpected rejection: {other:?}"));
                    continue;
                }
            }
        }
        let Some(oldest) = window.pop_front() else {
            if draining {
                return out;
            }
            continue;
        };
        let response = oldest.ticket.wait();
        out.latencies_s
            .push(oldest.submitted_at.elapsed().as_secs_f64());
        match response {
            Ok(v) if v == oldest.expected => {}
            Ok(v) => flag(
                &mut out.violations,
                format!(
                    "partial/corrupt value: got {v:#x}, want {:#x}",
                    oldest.expected
                ),
            ),
            Err(ServiceError::Exceeded(Exceeded::Deadline)) if oldest.tight => {}
            Err(e) => flag(&mut out.violations, format!("unexpected error: {e}")),
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    // Crash injection unwinds workers with sentinel panics; the default
    // hook would print a backtrace for each. Silence it for the run.
    std::panic::set_hook(Box::new(|_| {}));

    let seconds: u64 = arg_value("--seconds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
        .max(1);
    let procs: usize = arg_value("--procs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(2);
    let plan_cache = !has_flag("--no-plan-cache");

    let svc = Service::new(ServiceConfig {
        workers: procs,
        // Deep enough that a full driver window fits queued; QueueFull
        // then only appears transiently, as designed backpressure.
        queue_capacity: 2 * WINDOW,
        max_concurrent: 2 * procs,
        quantum: 1,
        breaker: bds_service::BreakerConfig::default(),
        cold_start_work: bds_service::DEFAULT_COLD_START_WORK,
    });
    // Every tenant runs under the default retry policy: transient block
    // faults are absorbed by block-granular retry instead of striking
    // the breaker or surfacing as panics.
    for &name in TENANTS.iter() {
        let t = svc.tenant(name);
        svc.set_tenant_retry(t, Some(RetryPolicy::default()));
    }
    let trips_before = trip_counts();
    let recovery_before = recovery_counts();
    let planners: Option<Vec<TenantPlanner>> = plan_cache.then(|| {
        TENANTS
            .iter()
            .map(|&name| TenantPlanner::new(&svc, name, PLAN_CAPACITY))
            .collect()
    });

    eprintln!(
        "service_soak: {seconds}s, {} tenants x {WINDOW} outstanding on {procs} workers, \
         crash every 250 ms, plan cache {}",
        TENANTS.len(),
        if plan_cache { "on" } else { "OFF" },
    );

    let stop = AtomicBool::new(false);
    let high_water = AtomicU64::new(0);
    let crashes = AtomicU64::new(0);
    let faulted = AtomicU64::new(0);
    let started = Instant::now();
    let outs: Vec<DriverOut> = std::thread::scope(|scope| {
        let chaos = scope.spawn(|| {
            let mut k = 0usize;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(250));
                svc.inject_worker_crash(k % procs);
                crashes.fetch_add(1, Ordering::Relaxed);
                k += 1;
            }
        });
        let (svc, stop, high_water, faulted) = (&svc, &stop, &high_water, &faulted);
        let planners = &planners;
        let drivers: Vec<_> = TENANTS
            .iter()
            .enumerate()
            .map(|(i, &name)| {
                let planner = planners.as_ref().map(|ps| &ps[i]);
                scope.spawn(move || drive(svc, name, planner, stop, high_water, faulted))
            })
            .collect();
        std::thread::sleep(Duration::from_secs(seconds));
        stop.store(true, Ordering::Relaxed);
        let outs = drivers.into_iter().map(|d| d.join().unwrap()).collect();
        chaos.join().unwrap();
        outs
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut failures: Vec<String> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    for out in outs {
        failures.extend(out.violations);
        latencies.extend(out.latencies_s);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());

    // Quiescent ledger: every driver has drained its window, so per
    // tenant everything submitted was either rejected at admission or
    // delivered through its ticket.
    let stats = svc.stats();
    let mut tenant_completions: Vec<(String, u64, u64)> = Vec::new();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut rejected = 0u64;
    for t in &stats.tenants {
        if t.submitted != t.completed + t.rejected() {
            failures.push(format!(
                "tenant {}: ledger out of balance: {} submitted != {} completed + {} rejected",
                t.name,
                t.submitted,
                t.completed,
                t.rejected(),
            ));
        }
        if t.admitted != t.completed {
            failures.push(format!(
                "tenant {}: lost responses: {} admitted but {} completed",
                t.name, t.admitted, t.completed,
            ));
        }
        submitted += t.submitted;
        completed += t.completed;
        rejected += t.rejected();
        tenant_completions.push((t.name.clone(), t.completed, t.block_retries));
    }

    // Fairness: with identical offered load, each tenant's completion
    // share must be within 2x of fair share, both bounds.
    let fair = completed as f64 / TENANTS.len() as f64;
    for (name, done, _) in &tenant_completions {
        let share = *done as f64;
        if share < fair / 2.0 || share > fair * 2.0 {
            failures.push(format!(
                "tenant {name} starved or hogged: {share} completions vs fair share {fair:.0}"
            ));
        }
    }

    let concurrent_per_tenant = high_water.load(Ordering::Relaxed);
    // Each driver independently reached its high water; the fleet claim
    // (>= 1k concurrent) holds when every window filled at least once.
    if concurrent_per_tenant < WINDOW as u64 {
        failures.push(format!(
            "offered concurrency never reached the target: per-tenant high water \
             {concurrent_per_tenant} < {WINDOW}"
        ));
    }
    if stats.respawns == 0 && crashes.load(Ordering::Relaxed) > 0 {
        failures.push("crashes were injected but no worker respawned".into());
    }

    // Recovery claim: every admitted faulted request was salvaged by a
    // block retry — never quarantined, never lost (the ledger above
    // already proves delivery; the no-partial claim proves the value).
    let recovery = RecoveryCounters::from(recovery_counts().saturating_sub(&recovery_before));
    let admitted_faulted = faulted.load(Ordering::Relaxed);
    let tenant_block_retries: u64 = stats.tenants.iter().map(|t| t.block_retries).sum();
    if recovery.quarantines != 0 {
        failures.push(format!(
            "transient faults must never quarantine: {} quarantines over the run",
            recovery.quarantines
        ));
    }
    if admitted_faulted > 0 && recovery.recovered_jobs == 0 {
        failures.push(format!(
            "{admitted_faulted} faulted requests admitted but zero recovered jobs — \
             block recovery dead"
        ));
    }

    // Plan-cache claim: with per-tenant caches on, each tenant pays the
    // optimizer once per shape and every later lookup (admitted or
    // rejected — planning precedes admission) must hit the cache.
    let mut plan = PlanCounters::default();
    for t in &stats.tenants {
        plan.hits += t.plan_hits;
        plan.misses += t.plan_misses;
        if plan_cache {
            match t.plan_hit_rate() {
                Some(r) if r >= 0.9 => {}
                r => failures.push(format!(
                    "tenant {}: plan-cache hit rate {} below the 0.9 floor",
                    t.name,
                    r.map(|x| format!("{x:.3}")).unwrap_or_else(|| "n/a".into()),
                )),
            }
        }
    }
    plan.entries = planners
        .as_ref()
        .map(|ps| ps.iter().map(|p| p.cache().len() as u64).sum())
        .unwrap_or(0);

    let trips = trip_counts();
    let gov = GovCounters {
        sheds: stats.sheds,
        respawns: stats.respawns,
        deadline_trips: trips.deadline.saturating_sub(trips_before.deadline),
        mem_trips: trips.memory.saturating_sub(trips_before.memory),
    };
    let qps = completed as f64 / elapsed;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };

    eprintln!(
        "service_soak: {submitted} submitted, {completed} completed, {rejected} rejected; \
         {:.0} qps, p50 {:.1} ms, p99 {:.1} ms; {} crashes, {} respawns, \
         trips: {} deadline / {} memory; plan cache: {} hits / {} misses ({:.3} hit rate)",
        qps,
        p50 * 1e3,
        p99 * 1e3,
        crashes.load(Ordering::Relaxed),
        gov.respawns,
        gov.deadline_trips,
        gov.mem_trips,
        plan.hits,
        plan.misses,
        plan.hit_rate(),
    );
    eprintln!(
        "service_soak: recovery: {admitted_faulted} faulted requests admitted, \
         {} block retries ({} per-tenant), {} recovered jobs, {} quarantines",
        recovery.block_retries,
        tenant_block_retries,
        recovery.recovered_jobs,
        recovery.quarantines,
    );

    if let Some(path) = arg_value("--json") {
        let mut rep = JsonReport::new("service_soak", &format!("{seconds}s"));
        rep.push(Record {
            op: "service_soak".into(),
            library: "service".into(),
            n: N,
            procs,
            policy: None,
            mean_s: mean,
            min_s: percentile(&latencies, 0.0),
            stddev_s: 0.0,
            repeats: latencies.len(),
            peak_bytes: 0,
            block_size: 0,
            num_blocks: 0,
            sched: Some(stats.total()),
            gov: Some(gov),
            svc: Some(SvcCounters {
                qps,
                p50_s: p50,
                p99_s: p99,
                submitted,
                completed,
                rejected,
                tenants: tenant_completions,
            }),
            plan: Some(plan),
            recovery: Some(recovery),
        });
        rep.write(&path).expect("writing service_soak JSON");
        eprintln!("service_soak: wrote {path}");
    }

    drop(svc);
    if failures.is_empty() {
        eprintln!("service_soak: clean shutdown, all claims held");
    } else {
        failures.truncate(32);
        for f in &failures {
            eprintln!("service_soak: VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}
