//! The raw-speed A/B: SIMD lowering and NUMA-aware placement.
//!
//! Three experiments in one binary:
//!
//! 1. **SIMD vs scalar** — mandelbrot and the image filter chain at
//!    every dispatch level the CPU supports (forced via
//!    `bds_seq::force_level`), against the sequential reference, the
//!    `delay` pipeline lowering, and a rayon-style statically-striped
//!    baseline on the same pool width. All variants share one kernel,
//!    so outputs are bit-identical and checksum-verified here.
//! 2. **Byte kernels** — grep and wc with their `run_simd` variants at
//!    forced scalar and at the best detected level, against `run_delay`.
//! 3. **Placement** — the mandelbrot SIMD leg on a grouped pool with 1
//!    vs 2 placement groups (steal-locally-first victim ordering),
//!    exporting `cross_steals` so the locality effect is auditable.
//!
//! Flags: `--quick`/`--full` (scale), `--json <path>` (machine-readable
//! export, schema `bds-bench/v2`). The placement records carry
//! `policy: "groups:<g>"`; SIMD legs carry `library: "simd:<level>"`.
//! `BDS_NUMA_GROUPS` is *not* consulted here — group counts are pinned
//! per record so the A/B is explicit.

use bds_bench::json::{JsonReport, Record};
use bds_bench::{arg_value, max_procs, measure_full, Protocol, Scale};
use bds_metrics::{fmt_ratio, fmt_secs, Table};
use bds_seq::simd::{self, SimdLevel};
use bds_workloads::{grep, image, mandelbrot, wc};

#[global_allocator]
static ALLOC: bds_metrics::CountingAlloc = bds_metrics::CountingAlloc;

/// One measured row of the printed tables / JSON export.
struct Row {
    op: &'static str,
    library: String,
    n: usize,
    record: Record,
    mean_s: f64,
    min_s: f64,
}

fn push_measurement(
    rows: &mut Vec<Row>,
    op: &'static str,
    library: &str,
    n: usize,
    m: &bds_bench::Measurement,
) {
    rows.push(Row {
        op,
        library: library.to_string(),
        n,
        record: Record::from_measurement(op, library, n, m),
        mean_s: m.timing.mean,
        min_s: m.timing.min,
    });
}

/// Time `f` on a grouped pool and snapshot the scheduler counters —
/// `measure_full` always builds an ungrouped pool, and the placement
/// A/B needs `cross_steals` from a pool with a pinned group count.
fn measure_grouped<R: Send>(
    procs: usize,
    groups: usize,
    proto: Protocol,
    mut f: impl FnMut() -> R + Send,
) -> (bds_metrics::Timing, usize, bds_pool::WorkerStats) {
    let pool = bds_pool::Pool::new_grouped(procs, groups);
    let f = &mut f;
    let before = pool.stats().total();
    let (timing, peak_bytes) =
        bds_metrics::time_stats_with_warmup(proto.warmup, proto.repeat, || {
            pool.install(&mut *f)
        });
    let mut total = pool.stats().total();
    // Only the delta over this measurement is interesting; warmup noise
    // is included, which is fine for a ratio-of-ratios comparison.
    total.steals -= before.steals;
    total.cross_steals -= before.cross_steals;
    total.jobs_executed -= before.jobs_executed;
    (timing, peak_bytes, total)
}

fn main() {
    let scale = Scale::from_args();
    let proto = scale.protocol();
    let json_path = arg_value("--json");
    let capture = json_path.is_some();
    let procs = max_procs();
    let levels = simd::supported_levels();
    println!(
        "SIMD & placement A/B (scale: {:?}, P = {procs}, levels: {:?})",
        scale,
        levels.iter().map(|l| l.name()).collect::<Vec<_>>(),
    );
    println!();

    let mut rows: Vec<Row> = Vec::new();

    // -- mandelbrot ------------------------------------------------------
    let mandel = mandelbrot::Params {
        width: 512,
        height: scale.size(512),
        max_iter: 96,
    };
    {
        let n = mandel.pixels();
        let oracle = mandelbrot::checksum(&mandelbrot::reference(mandel));
        let m = measure_full(1, proto, capture, || mandelbrot::reference(mandel));
        push_measurement(&mut rows, "mandelbrot", "seq", n, &m);
        let rayon_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(procs)
            .build()
            .expect("rayon stand-in pool");
        let m = measure_full(procs, proto, capture, || {
            rayon_pool.install(|| mandelbrot::run_rayon(mandel))
        });
        push_measurement(&mut rows, "mandelbrot", "rayon", n, &m);
        let m = measure_full(procs, proto, capture, || mandelbrot::run_delay(mandel));
        push_measurement(&mut rows, "mandelbrot", "delay", n, &m);
        for &level in &levels {
            let guard = simd::force_level(level);
            assert_eq!(guard.applied(), level);
            let m = measure_full(procs, proto, capture, || mandelbrot::run_simd(mandel));
            push_measurement(&mut rows, "mandelbrot", &format!("simd:{}", level.name()), n, &m);
            assert_eq!(
                mandelbrot::checksum(&mandelbrot::run_simd(mandel)),
                oracle,
                "mandelbrot diverged at level {}",
                level.name(),
            );
        }
    }

    // -- image filter chain ----------------------------------------------
    let img_p = image::Params {
        width: 2048,
        height: scale.size(1024),
        ..Default::default()
    };
    {
        let n = img_p.pixels();
        let img = image::generate(img_p);
        let oracle = image::checksum(&image::reference(img_p, &img));
        let m = measure_full(1, proto, capture, || image::reference(img_p, &img));
        push_measurement(&mut rows, "image", "seq", n, &m);
        let rayon_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(procs)
            .build()
            .expect("rayon stand-in pool");
        let m = measure_full(procs, proto, capture, || {
            rayon_pool.install(|| image::run_rayon(img_p, &img))
        });
        push_measurement(&mut rows, "image", "rayon", n, &m);
        let m = measure_full(procs, proto, capture, || image::run_delay(img_p, &img));
        push_measurement(&mut rows, "image", "delay", n, &m);
        for &level in &levels {
            let _guard = simd::force_level(level);
            let m = measure_full(procs, proto, capture, || image::run_simd(img_p, &img));
            push_measurement(&mut rows, "image", &format!("simd:{}", level.name()), n, &m);
            assert_eq!(
                image::checksum(&image::run_simd(img_p, &img)),
                oracle,
                "image chain diverged at level {}",
                level.name(),
            );
        }
    }

    // -- byte kernels: grep & wc, scalar vs best level -------------------
    let byte_levels = [SimdLevel::Scalar, *levels.last().expect("scalar always supported")];
    {
        let p = grep::Params {
            n: scale.size(8_000_000),
            ..Default::default()
        };
        let text = grep::generate(&p);
        let pat = p.pattern.clone();
        let m = measure_full(procs, proto, capture, || grep::run_delay(&text, &pat));
        push_measurement(&mut rows, "grep", "delay", p.n, &m);
        for &level in &byte_levels {
            let _guard = simd::force_level(level);
            let m = measure_full(procs, proto, capture, || grep::run_simd(&text, &pat));
            push_measurement(&mut rows, "grep", &format!("simd:{}", level.name()), p.n, &m);
        }
    }
    {
        let n = scale.size(8_000_000);
        let text = wc::generate(wc::Params {
            n,
            ..Default::default()
        });
        let m = measure_full(procs, proto, capture, || wc::run_delay(&text));
        push_measurement(&mut rows, "wc", "delay", n, &m);
        for &level in &byte_levels {
            let _guard = simd::force_level(level);
            let m = measure_full(procs, proto, capture, || wc::run_simd(&text));
            push_measurement(&mut rows, "wc", &format!("simd:{}", level.name()), n, &m);
        }
    }

    // -- printed summary -------------------------------------------------
    for op in ["mandelbrot", "image", "grep", "wc"] {
        let op_rows: Vec<&Row> = rows.iter().filter(|r| r.op == op).collect();
        let baseline = op_rows
            .iter()
            .find(|r| r.library == "rayon" || r.library == "delay")
            .expect("every op has a baseline leg");
        let (base_lib, base_min) = (baseline.library.clone(), baseline.min_s);
        println!("== {op} (n = {}) ==", op_rows[0].n);
        let mut t = Table::new(vec!["variant", "mean", "min", &format!("{base_lib}/x")]);
        for r in &op_rows {
            t.row(vec![
                r.library.clone(),
                fmt_secs(r.mean_s),
                fmt_secs(r.min_s),
                fmt_ratio(base_min / r.min_s),
            ]);
        }
        println!("{}", t.render());
    }

    // -- placement: grouped pools, local-first stealing ------------------
    println!("== placement (mandelbrot simd, P = {procs}) ==");
    let mut t = Table::new(vec!["groups", "mean", "min", "steals", "cross_steals"]);
    for groups in [1usize, 2] {
        let (timing, peak_bytes, sched) =
            measure_grouped(procs, groups, proto, || mandelbrot::run_simd(mandel));
        t.row(vec![
            groups.to_string(),
            fmt_secs(timing.mean),
            fmt_secs(timing.min),
            sched.steals.to_string(),
            sched.cross_steals.to_string(),
        ]);
        rows.push(Row {
            op: "mandelbrot-numa",
            library: "simd".to_string(),
            n: mandel.pixels(),
            mean_s: timing.mean,
            min_s: timing.min,
            record: Record {
                op: "mandelbrot-numa".to_string(),
                library: "simd".to_string(),
                n: mandel.pixels(),
                procs,
                policy: Some(format!("groups:{groups}")),
                mean_s: timing.mean,
                min_s: timing.min,
                stddev_s: timing.stddev,
                repeats: timing.repeats,
                peak_bytes,
                block_size: 0,
                num_blocks: 0,
                sched: Some(sched),
                gov: None,
                svc: None,
                plan: None,
                recovery: None,
            },
        });
    }
    println!("{}", t.render());
    println!(
        "Expected shape: simd at the top level beats rayon and delay on \
         mandelbrot/image; grep/wc simd legs at or above delay; groups:2 \
         shows cross_steals well below total steals."
    );

    if let Some(path) = json_path {
        let mut rep = JsonReport::new("simd", scale.name());
        for row in rows {
            rep.push(row.record);
        }
        match rep.write(&path) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
