//! Versioned JSON export for the figure binaries (no serde in the
//! offline build — emission is hand-written against a fixed schema).
//!
//! # Schema `bds-bench/v2`
//!
//! ```json
//! {
//!   "schema": "bds-bench/v2",
//!   "figure": "fig13",
//!   "scale": "quick",
//!   "max_procs": 8,
//!   "records": [
//!     {
//!       "op": "bestcut", "library": "delay", "n": 200000, "procs": 8,
//!       "policy": "adaptive",
//!       "mean_s": 0.0042, "min_s": 0.0040, "stddev_s": 0.0002,
//!       "repeats": 3, "peak_bytes": 1048576,
//!       "block_size": 1563, "num_blocks": 128,
//!       "sched": {
//!         "jobs": 640, "local_pops": 500, "injector_pops": 30,
//!         "steals": 110, "cross_steals": 17, "failed_steals": 45,
//!         "parks": 12, "idle_ns": 123456
//!       },
//!       "gov": {
//!         "sheds": 0, "respawns": 1,
//!         "deadline_trips": 12, "mem_trips": 3
//!       },
//!       "svc": {
//!         "qps": 5120.0, "p50_s": 0.0011, "p99_s": 0.0089,
//!         "submitted": 40960, "completed": 40940, "rejected": 20,
//!         "tenants": [{"name": "alpha", "completed": 10235, "block_retries": 104}]
//!       },
//!       "plan": {
//!         "hits": 40944, "misses": 16, "entries": 16,
//!         "hit_rate": 0.99961
//!       },
//!       "recovery": {
//!         "block_retries": 12, "quarantines": 0, "recovered_jobs": 12
//!       }
//!     }
//!   ]
//! }
//! ```
//!
//! `sched` is `null` for measurements taken without an observability
//! capture. `policy` is `null` when the run used whatever block policy
//! was ambient, or the policy label (`"adaptive"`, `"fixed:8"`, ...)
//! when the binary pinned one — the `--geometry-sweep` mode of the
//! geometry binary sets it on every record. `gov` is `null` except for
//! resource-governance runs (the soak binary), where it carries the
//! admission/overload counters: pipelines shed to degraded sequential
//! execution, workers respawned after a crash, and budget trips by
//! kind. Times are seconds; comparisons should use `min_s` (the
//! noise-robust statistic — see `bds_metrics::Timing`).
//!
//! `svc` is `null` except for service benchmark runs (the
//! `service_soak` binary), where it carries the request-level view:
//! sustained queries per second, request latency quantiles measured
//! from submit to response, the admission ledger (`submitted` =
//! `completed` + `rejected` at quiescence), and per-tenant completion
//! counts for fairness auditing.
//!
//! `plan` is `null` except for runs that resolved their pipelines
//! through a `bds_plan::PlanCache` (the `service_soak` binary), where
//! it carries the shape-cache view aggregated over every tenant: cache
//! hits and misses (a miss runs the optimizer, a hit reuses a plan),
//! resident plan count at the end of the run, and the hit rate
//! (`hits / (hits + misses)`, `0` when there were no lookups).
//!
//! `recovery` is `null` except for runs that retried faulted blocks
//! under a `bds_pool::RetryPolicy` (the transient-fault legs of the
//! soak binaries), where it carries the block-recovery ledger: block
//! attempts re-executed, blocks quarantined, and jobs that completed
//! after at least one retry.
//!
//! v2 is a strict superset of v1 (it adds `policy`, and later the
//! optional `gov`, `svc`, `plan`, and `recovery` blocks); consumers
//! keyed on the schema string should accept both.

use std::fmt::Write as _;
use std::io::Write as _;

use crate::Measurement;

/// The schema identifier emitted in every document.
pub const SCHEMA: &str = "bds-bench/v2";

/// Resource-governance counters attached to soak/overload records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovCounters {
    /// Pipelines shed to degraded (sequential, in-caller) execution.
    pub sheds: u64,
    /// Workers respawned after a crash.
    pub respawns: u64,
    /// Governed runs refused because their deadline passed.
    pub deadline_trips: u64,
    /// Governed runs refused because their memory budget was exceeded.
    pub mem_trips: u64,
}

/// Block-recovery counters attached to records whose runs executed
/// under a `bds_pool::RetryPolicy` (the fault legs of the soak
/// binaries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Individual block attempts re-executed after a transient fault.
    pub block_retries: u64,
    /// Blocks quarantined after exhausting their retry budget (or
    /// classified deterministic).
    pub quarantines: u64,
    /// Jobs that completed successfully after at least one block retry.
    pub recovered_jobs: u64,
}

impl From<bds_pool::RecoveryCounts> for RecoveryCounters {
    fn from(c: bds_pool::RecoveryCounts) -> RecoveryCounters {
        RecoveryCounters {
            block_retries: c.block_retries,
            quarantines: c.quarantines,
            recovered_jobs: c.recovered_jobs,
        }
    }
}

/// Plan-cache counters attached to records whose pipelines were
/// resolved through a `bds_plan::PlanCache`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCounters {
    /// Shape lookups answered with a cached plan.
    pub hits: u64,
    /// Shape lookups that had to run the optimizer.
    pub misses: u64,
    /// Plans resident in the cache(s) at the end of the run.
    pub entries: u64,
}

impl PlanCounters {
    /// `hits / (hits + misses)`, or 0 when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Request-level counters attached to service benchmark records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SvcCounters {
    /// Completed requests per second of wall time.
    pub qps: f64,
    /// Median submit-to-response latency, seconds.
    pub p50_s: f64,
    /// 99th-percentile submit-to-response latency, seconds.
    pub p99_s: f64,
    /// Requests offered to the service.
    pub submitted: u64,
    /// Requests whose ticket resolved (success, budget trip, or panic —
    /// all are deliveries).
    pub completed: u64,
    /// Requests refused at admission (queue-full, deadline, breaker,
    /// shutdown).
    pub rejected: u64,
    /// `(tenant name, completed requests, salvaged block retries)` per
    /// tenant, for fairness and recovery auditing.
    pub tenants: Vec<(String, u64, u64)>,
}

/// One benchmark measurement row.
pub struct Record {
    /// Workload name (e.g. `"bestcut"`).
    pub op: String,
    /// Library variant (`"array"`, `"rad"`, `"delay"`, `"sob"`, ...).
    pub library: String,
    /// Problem size.
    pub n: usize,
    /// Thread count.
    pub procs: usize,
    /// Block-geometry policy the run was pinned to (`None` = ambient).
    pub policy: Option<String>,
    /// Mean wall seconds over the measured repetitions.
    pub mean_s: f64,
    /// Fastest measured run, seconds.
    pub min_s: f64,
    /// Population stddev of the measured runs, seconds.
    pub stddev_s: f64,
    /// Number of measured repetitions.
    pub repeats: usize,
    /// Peak extra heap of one run, bytes.
    pub peak_bytes: usize,
    /// Resolved block size of the dominant pipeline stage (0 = n/a).
    pub block_size: usize,
    /// Block count of that stage (0 = n/a).
    pub num_blocks: usize,
    /// Scheduler counters from the capture run, if one was taken.
    pub sched: Option<bds_pool::WorkerStats>,
    /// Resource-governance counters, if the run governed its pipelines
    /// (soak/overload binaries); `None` for ordinary measurements.
    pub gov: Option<GovCounters>,
    /// Request-level service counters, if the run drove a
    /// `bds_service::Service` (the `service_soak` binary); `None` for
    /// ordinary measurements.
    pub svc: Option<SvcCounters>,
    /// Plan-cache counters, if the run resolved its pipelines through a
    /// `bds_plan::PlanCache`; `None` for ordinary measurements.
    pub plan: Option<PlanCounters>,
    /// Block-recovery counters, if the run retried faulted blocks under
    /// a `bds_pool::RetryPolicy`; `None` for ordinary measurements.
    pub recovery: Option<RecoveryCounters>,
}

impl Record {
    /// Build a record from a [`Measurement`].
    pub fn from_measurement(op: &str, library: &str, n: usize, m: &Measurement) -> Record {
        let (block_size, num_blocks) = m.geometry();
        Record {
            op: op.to_string(),
            library: library.to_string(),
            n,
            procs: m.procs,
            policy: None,
            mean_s: m.timing.mean,
            min_s: m.timing.min,
            stddev_s: m.timing.stddev,
            repeats: m.timing.repeats,
            peak_bytes: m.peak_bytes,
            block_size,
            num_blocks,
            sched: m.capture.as_ref().map(|c| c.sched),
            gov: None,
            svc: None,
            plan: None,
            recovery: None,
        }
    }
}

/// Accumulates records for one figure binary and writes the document.
pub struct JsonReport {
    figure: String,
    scale: String,
    records: Vec<Record>,
}

impl JsonReport {
    /// Start a report for `figure` (e.g. `"fig13"`) at `scale`.
    pub fn new(figure: &str, scale: &str) -> JsonReport {
        JsonReport {
            figure: figure.to_string(),
            scale: scale.to_string(),
            records: Vec::new(),
        }
    }

    /// Append one measurement row.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// Serialize the document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", escape(SCHEMA));
        let _ = writeln!(out, "  \"figure\": {},", escape(&self.figure));
        let _ = writeln!(out, "  \"scale\": {},", escape(&self.scale));
        let _ = writeln!(out, "  \"max_procs\": {},", crate::max_procs());
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(
                out,
                "\"op\": {}, \"library\": {}, \"n\": {}, \"procs\": {}, \"policy\": {}, ",
                escape(&r.op),
                escape(&r.library),
                r.n,
                r.procs,
                match &r.policy {
                    Some(p) => escape(p),
                    None => "null".to_string(),
                }
            );
            let _ = write!(
                out,
                "\"mean_s\": {}, \"min_s\": {}, \"stddev_s\": {}, \"repeats\": {}, ",
                num(r.mean_s),
                num(r.min_s),
                num(r.stddev_s),
                r.repeats
            );
            let _ = write!(
                out,
                "\"peak_bytes\": {}, \"block_size\": {}, \"num_blocks\": {}, ",
                r.peak_bytes, r.block_size, r.num_blocks
            );
            match &r.sched {
                Some(s) => {
                    let _ = write!(
                        out,
                        "\"sched\": {{\"jobs\": {}, \"local_pops\": {}, \
                         \"injector_pops\": {}, \"steals\": {}, \
                         \"cross_steals\": {}, \"failed_steals\": {}, \
                         \"parks\": {}, \"idle_ns\": {}}}",
                        s.jobs_executed,
                        s.local_pops,
                        s.injector_pops,
                        s.steals,
                        s.cross_steals,
                        s.failed_steals,
                        s.parks,
                        s.idle_ns
                    );
                }
                None => out.push_str("\"sched\": null"),
            }
            match &r.gov {
                Some(g) => {
                    let _ = write!(
                        out,
                        ", \"gov\": {{\"sheds\": {}, \"respawns\": {}, \
                         \"deadline_trips\": {}, \"mem_trips\": {}}}",
                        g.sheds, g.respawns, g.deadline_trips, g.mem_trips
                    );
                }
                None => out.push_str(", \"gov\": null"),
            }
            match &r.svc {
                Some(v) => {
                    let _ = write!(
                        out,
                        ", \"svc\": {{\"qps\": {}, \"p50_s\": {}, \"p99_s\": {}, \
                         \"submitted\": {}, \"completed\": {}, \"rejected\": {}, \
                         \"tenants\": [",
                        num(v.qps),
                        num(v.p50_s),
                        num(v.p99_s),
                        v.submitted,
                        v.completed,
                        v.rejected
                    );
                    for (t, (name, completed, block_retries)) in v.tenants.iter().enumerate() {
                        if t > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(
                            out,
                            "{{\"name\": {}, \"completed\": {}, \"block_retries\": {}}}",
                            escape(name),
                            completed,
                            block_retries
                        );
                    }
                    out.push_str("]}");
                }
                None => out.push_str(", \"svc\": null"),
            }
            match &r.plan {
                Some(p) => {
                    let _ = write!(
                        out,
                        ", \"plan\": {{\"hits\": {}, \"misses\": {}, \
                         \"entries\": {}, \"hit_rate\": {}}}",
                        p.hits,
                        p.misses,
                        p.entries,
                        num(p.hit_rate())
                    );
                }
                None => out.push_str(", \"plan\": null"),
            }
            match &r.recovery {
                Some(rec) => {
                    let _ = write!(
                        out,
                        ", \"recovery\": {{\"block_retries\": {}, \
                         \"quarantines\": {}, \"recovered_jobs\": {}}}",
                        rec.block_retries, rec.quarantines, rec.recovered_jobs
                    );
                }
                None => out.push_str(", \"recovery\": null"),
            }
            out.push('}');
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the document to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render().as_bytes())
    }
}

/// JSON string literal with escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number (non-finite values have no JSON encoding; they can
/// only arise from a pathological clock and are reported as 0).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(jobs: u64, steals: u64) -> bds_pool::WorkerStats {
        bds_pool::WorkerStats {
            jobs_executed: jobs,
            steals,
            ..Default::default()
        }
    }

    #[test]
    fn renders_schema_and_records() {
        let mut rep = JsonReport::new("fig13", "quick");
        rep.push(Record {
            op: "bestcut".into(),
            library: "delay".into(),
            n: 1000,
            procs: 2,
            mean_s: 0.5,
            min_s: 0.25,
            stddev_s: 0.125,
            repeats: 3,
            peak_bytes: 4096,
            block_size: 128,
            num_blocks: 8,
            sched: Some(stats(40, 7)),
            policy: Some("adaptive".into()),
            gov: Some(GovCounters {
                sheds: 2,
                respawns: 1,
                deadline_trips: 12,
                mem_trips: 3,
            }),
            svc: Some(SvcCounters {
                qps: 5120.0,
                p50_s: 0.0011,
                p99_s: 0.0089,
                submitted: 100,
                completed: 98,
                rejected: 2,
                tenants: vec![("alpha".into(), 49, 3), ("beta".into(), 49, 0)],
            }),
            plan: Some(PlanCounters {
                hits: 96,
                misses: 4,
                entries: 4,
            }),
            recovery: Some(RecoveryCounters {
                block_retries: 12,
                quarantines: 1,
                recovered_jobs: 11,
            }),
        });
        rep.push(Record {
            op: "bfs".into(),
            library: "array".into(),
            n: 1000,
            procs: 2,
            mean_s: 1.0,
            min_s: 1.0,
            stddev_s: 0.0,
            repeats: 1,
            peak_bytes: 0,
            block_size: 0,
            num_blocks: 0,
            sched: None,
            policy: None,
            gov: None,
            svc: None,
            plan: None,
            recovery: None,
        });
        let s = rep.render();
        assert!(s.contains("\"schema\": \"bds-bench/v2\""));
        assert!(s.contains("\"policy\": \"adaptive\""));
        assert!(s.contains("\"policy\": null"));
        assert!(s.contains("\"figure\": \"fig13\""));
        assert!(s.contains("\"min_s\": 0.25"));
        assert!(s.contains("\"steals\": 7, \"cross_steals\": 0"));
        assert!(s.contains("\"sched\": null"));
        assert!(s.contains(
            "\"gov\": {\"sheds\": 2, \"respawns\": 1, \"deadline_trips\": 12, \"mem_trips\": 3}"
        ));
        assert!(s.contains("\"gov\": null"));
        assert!(s.contains(
            "\"svc\": {\"qps\": 5120, \"p50_s\": 0.0011, \"p99_s\": 0.0089, \
             \"submitted\": 100, \"completed\": 98, \"rejected\": 2, \
             \"tenants\": [{\"name\": \"alpha\", \"completed\": 49, \"block_retries\": 3}, \
             {\"name\": \"beta\", \"completed\": 49, \"block_retries\": 0}]}"
        ));
        assert!(s.contains("\"svc\": null"));
        assert!(s.contains(
            "\"plan\": {\"hits\": 96, \"misses\": 4, \"entries\": 4, \"hit_rate\": 0.96}"
        ));
        assert!(s.contains("\"plan\": null"));
        assert!(s.contains(
            "\"recovery\": {\"block_retries\": 12, \"quarantines\": 1, \
             \"recovered_jobs\": 11}"
        ));
        assert!(s.contains("\"recovery\": null"));
        // Exactly one comma between the two records.
        assert_eq!(s.matches("},\n").count(), 1);
    }

    #[test]
    fn plan_hit_rate_handles_empty_and_full() {
        assert_eq!(PlanCounters::default().hit_rate(), 0.0);
        let p = PlanCounters {
            hits: 3,
            misses: 1,
            entries: 1,
        };
        assert_eq!(p.hit_rate(), 0.75);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("plain"), "\"plain\"");
    }

    #[test]
    fn non_finite_numbers_do_not_break_json() {
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        assert_eq!(num(0.001), "0.001");
    }
}
