//! # bds-bench — harness regenerating the paper's tables and figures
//!
//! One binary per figure of the evaluation section:
//!
//! | binary  | regenerates |
//! |---------|-------------|
//! | `fig05` | Figure 5 — bestcut read/write accounting (model + measured) |
//! | `fig13` | Figure 13 — BID benchmarks, time & space, A/R/Ours at P=1 and P=max |
//! | `fig14` | Figure 14 — RAD benchmarks, time & space, A/Ours at P=1 and P=max |
//! | `fig15` | Figure 15 — speedup curves vs processor count (bfs, primes) |
//! | `fig16` | Figure 16 — stream-of-blocks bestcut vs block size |
//!
//! Run with `--quick` for a fast smoke pass (the artifact's "small
//! evaluation"), `--full` for the default scaled sizes. Criterion
//! microbenches live in `benches/`.

#![warn(missing_docs)]

pub mod json;

use std::time::Duration;

use bds_pool::Pool;

/// Repeat/warmup settings (the artifact protocol).
#[derive(Debug, Clone, Copy)]
pub struct Protocol {
    /// Warmup period: run back-to-back until it elapses.
    pub warmup: Duration,
    /// Number of measured repetitions to average.
    pub repeat: usize,
}

/// Size scaling selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~10× smaller than default: finishes in seconds.
    Quick,
    /// The scaled-down defaults from DESIGN.md.
    Full,
}

impl Scale {
    /// Parse from argv: `--quick` or `--full` (default quick — the
    /// binaries are meant to be runnable anywhere).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// The name used in JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Scale a default size.
    pub fn size(&self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 10).max(1),
            Scale::Full => full,
        }
    }

    /// The measurement protocol appropriate for the scale.
    pub fn protocol(&self) -> Protocol {
        match self {
            Scale::Quick => Protocol {
                warmup: Duration::from_millis(100),
                repeat: 3,
            },
            Scale::Full => Protocol {
                warmup: Duration::from_millis(500),
                repeat: 5,
            },
        }
    }
}

/// Was `flag` (e.g. `"--profile"`) passed on the command line?
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// The value following `flag` on the command line (e.g.
/// `--json out.json`), if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// One profiled (untimed) run's observability capture: the full
/// per-stage report plus the scheduler-counter delta and the dominant
/// block geometry, for the JSON export and `--profile` output.
pub struct Capture {
    /// The per-stage profiling report (stage timings, scheduler stats,
    /// heap stats).
    pub report: bds_seq::ProfileReport,
    /// Scheduler counters summed across the pool's workers for the run.
    pub sched: bds_pool::WorkerStats,
    /// Block size of the stage that processed the most elements (0 when
    /// the run never touched bds-seq geometry, e.g. array baselines).
    pub block_size: usize,
    /// Block count of that same stage.
    pub num_blocks: usize,
}

/// The result of [`measure_full`]: full timing statistics, peak heap,
/// and (when requested) an observability capture.
pub struct Measurement {
    /// Thread count the workload ran under.
    pub procs: usize,
    /// Wall-time statistics over the measured repetitions.
    pub timing: bds_metrics::Timing,
    /// Peak extra heap of a single measured run, in bytes.
    pub peak_bytes: usize,
    /// Observability capture from one extra profiled run (untimed, so
    /// profiling never perturbs the reported wall times); `None` unless
    /// requested.
    pub capture: Option<Capture>,
}

impl Measurement {
    /// `(block_size, num_blocks)` from the capture, or zeros.
    pub fn geometry(&self) -> (usize, usize) {
        self.capture
            .as_ref()
            .map_or((0, 0), |c| (c.block_size, c.num_blocks))
    }
}

/// Time `f` on a `procs`-thread pool following the protocol.
///
/// With `capture` set, one extra *untimed* run executes under
/// [`bds_seq::profile_on`] afterwards to collect scheduler statistics
/// and block geometry — the timed runs themselves always execute with
/// profiling disabled, so `--json`/`--profile` cannot skew the numbers
/// they report.
pub fn measure_full<R: Send>(
    procs: usize,
    proto: Protocol,
    capture: bool,
    mut f: impl FnMut() -> R + Send,
) -> Measurement {
    let pool = Pool::new(procs);
    let f = &mut f;
    let (timing, peak_bytes) =
        bds_metrics::time_stats_with_warmup(proto.warmup, proto.repeat, || {
            pool.install(&mut *f)
        });
    let capture = capture.then(|| {
        let (_, report) = bds_seq::profile_on(&pool, || pool.install(&mut *f));
        let sched = report.sched.total();
        // The dominant geometry: the stage that processed the most
        // elements with a resolved block size.
        let (block_size, num_blocks) = report
            .stages
            .iter()
            .filter(|s| s.block_size > 0)
            .max_by_key(|s| s.elements)
            .map_or((0, 0), |s| (s.block_size as usize, s.blocks as usize));
        Capture {
            report,
            sched,
            block_size,
            num_blocks,
        }
    });
    Measurement {
        procs,
        timing,
        peak_bytes,
        capture,
    }
}

/// Mean-only wrapper around [`measure_full`]: returns
/// `(mean_seconds, peak_extra_heap_bytes)`.
pub fn measure<R: Send>(
    procs: usize,
    proto: Protocol,
    f: impl FnMut() -> R + Send,
) -> (f64, usize) {
    let m = measure_full(procs, proto, false, f);
    (m.timing.mean, m.peak_bytes)
}

/// Number of hardware threads to use as "P = max".
///
/// By default this is `available_parallelism()` **floored at 2**: a
/// single-core machine still runs the multi-worker leg (oversubscribed)
/// so the scheduler's parallel paths — stealing, parking — are always
/// exercised and observable in the exported statistics.
///
/// Set `BDS_NUM_THREADS` to override both the detection and the floor —
/// `BDS_NUM_THREADS=1` is the supported way to get a genuinely
/// single-worker "P = max" leg. Values that fail to parse as a positive
/// integer are ignored.
pub fn max_procs() -> usize {
    if let Ok(v) = std::env::var("BDS_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2)
}

/// Shared seed plumbing for reproducible harness runs.
///
/// The differential checker (`bds-check`) and any bench harness that
/// wants replayable randomness agree on one derivation scheme: a
/// **master seed** (CLI flag or the [`seed::SEED_ENV`] environment
/// variable) is split into per-case **subseeds** with SplitMix64, so a
/// single printed subseed reproduces one case without re-running the
/// whole sweep.
pub mod seed {
    /// Environment variable carrying a master seed (decimal or
    /// `0x`-prefixed hex). A failing `bds-check` case prints the
    /// offending subseed in `BDS_CHECK_SEED=<n>` form so pasting that
    /// line in front of any `cargo run` replays it.
    pub const SEED_ENV: &str = "BDS_CHECK_SEED";

    /// SplitMix64 finalizer: the standard 64-bit mix used to
    /// decorrelate derived seeds.
    pub fn splitmix64(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive the subseed of case number `k` under `master`. Distinct
    /// `(master, k)` pairs give decorrelated streams; the same pair
    /// always gives the same subseed.
    pub fn subseed(master: u64, k: u64) -> u64 {
        splitmix64(master ^ splitmix64(k))
    }

    /// Read a seed from [`SEED_ENV`], if set and parsable (decimal or
    /// `0x` hex).
    pub fn from_env() -> Option<u64> {
        let v = std::env::var(SEED_ENV).ok()?;
        let v = v.trim();
        if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            v.parse().ok()
        }
    }
}

/// The processor counts for the Figure 15 sweep: 1, 2, 4, ... up to and
/// including `max`.
pub fn proc_sweep(max: usize) -> Vec<usize> {
    let mut ps = vec![];
    let mut p = 1;
    while p < max {
        ps.push(p);
        p *= 2;
    }
    ps.push(max);
    ps.dedup();
    ps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_sweep_includes_one_and_max() {
        assert_eq!(proc_sweep(1), vec![1]);
        assert_eq!(proc_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(proc_sweep(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn measure_runs_inside_sized_pool() {
        let proto = Protocol {
            warmup: Duration::from_millis(1),
            repeat: 1,
        };
        let (secs, _) = measure(2, proto, bds_pool::current_num_threads);
        assert!(secs >= 0.0);
    }

    #[test]
    fn max_procs_env_override() {
        // Env mutation: keep this the only test touching BDS_NUM_THREADS.
        std::env::set_var("BDS_NUM_THREADS", "1");
        assert_eq!(max_procs(), 1, "explicit override beats the floor of 2");
        std::env::set_var("BDS_NUM_THREADS", "7");
        assert_eq!(max_procs(), 7);
        std::env::set_var("BDS_NUM_THREADS", "zero");
        assert!(max_procs() >= 2, "unparsable values fall back");
        std::env::set_var("BDS_NUM_THREADS", "0");
        assert!(max_procs() >= 2, "zero is not a worker count");
        std::env::remove_var("BDS_NUM_THREADS");
        assert!(max_procs() >= 2);
    }

    #[test]
    fn subseeds_are_deterministic_and_distinct() {
        assert_eq!(seed::subseed(42, 7), seed::subseed(42, 7));
        assert_ne!(seed::subseed(42, 7), seed::subseed(42, 8));
        assert_ne!(seed::subseed(42, 7), seed::subseed(43, 7));
        // splitmix64 is a bijection, so 0 is not a fixed point trap.
        assert_ne!(seed::splitmix64(0), 0);
    }

    #[test]
    fn scale_sizes() {
        assert_eq!(Scale::Quick.size(1000), 100);
        assert_eq!(Scale::Full.size(1000), 1000);
        assert_eq!(Scale::Quick.size(5), 1);
    }
}
