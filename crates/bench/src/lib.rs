//! # bds-bench — harness regenerating the paper's tables and figures
//!
//! One binary per figure of the evaluation section:
//!
//! | binary  | regenerates |
//! |---------|-------------|
//! | `fig05` | Figure 5 — bestcut read/write accounting (model + measured) |
//! | `fig13` | Figure 13 — BID benchmarks, time & space, A/R/Ours at P=1 and P=max |
//! | `fig14` | Figure 14 — RAD benchmarks, time & space, A/Ours at P=1 and P=max |
//! | `fig15` | Figure 15 — speedup curves vs processor count (bfs, primes) |
//! | `fig16` | Figure 16 — stream-of-blocks bestcut vs block size |
//!
//! Run with `--quick` for a fast smoke pass (the artifact's "small
//! evaluation"), `--full` for the default scaled sizes. Criterion
//! microbenches live in `benches/`.

#![warn(missing_docs)]

use std::time::Duration;

use bds_pool::Pool;

/// Repeat/warmup settings (the artifact protocol).
#[derive(Debug, Clone, Copy)]
pub struct Protocol {
    /// Warmup period: run back-to-back until it elapses.
    pub warmup: Duration,
    /// Number of measured repetitions to average.
    pub repeat: usize,
}

/// Size scaling selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~10× smaller than default: finishes in seconds.
    Quick,
    /// The scaled-down defaults from DESIGN.md.
    Full,
}

impl Scale {
    /// Parse from argv: `--quick` or `--full` (default quick — the
    /// binaries are meant to be runnable anywhere).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Scale a default size.
    pub fn size(&self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 10).max(1),
            Scale::Full => full,
        }
    }

    /// The measurement protocol appropriate for the scale.
    pub fn protocol(&self) -> Protocol {
        match self {
            Scale::Quick => Protocol {
                warmup: Duration::from_millis(100),
                repeat: 3,
            },
            Scale::Full => Protocol {
                warmup: Duration::from_millis(500),
                repeat: 5,
            },
        }
    }
}

/// Time `f` on a `procs`-thread pool following the protocol. Returns
/// `(mean_seconds, peak_extra_heap_bytes)`.
pub fn measure<R: Send>(
    procs: usize,
    proto: Protocol,
    mut f: impl FnMut() -> R + Send,
) -> (f64, usize) {
    let pool = Pool::new(procs);
    let f = &mut f;
    let (secs, peak) = bds_metrics::time_with_warmup(proto.warmup, proto.repeat, move || {
        pool.install(&mut *f)
    });
    (secs, peak)
}

/// Number of hardware threads to use as "P = max".
pub fn max_procs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The processor counts for the Figure 15 sweep: 1, 2, 4, ... up to and
/// including `max`.
pub fn proc_sweep(max: usize) -> Vec<usize> {
    let mut ps = vec![];
    let mut p = 1;
    while p < max {
        ps.push(p);
        p *= 2;
    }
    ps.push(max);
    ps.dedup();
    ps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_sweep_includes_one_and_max() {
        assert_eq!(proc_sweep(1), vec![1]);
        assert_eq!(proc_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(proc_sweep(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn measure_runs_inside_sized_pool() {
        let proto = Protocol {
            warmup: Duration::from_millis(1),
            repeat: 1,
        };
        let (secs, _) = measure(2, proto, bds_pool::current_num_threads);
        assert!(secs >= 0.0);
    }

    #[test]
    fn scale_sizes() {
        assert_eq!(Scale::Quick.size(1000), 100);
        assert_eq!(Scale::Full.size(1000), 1000);
        assert_eq!(Scale::Quick.size(5), 1);
    }
}
