//! Criterion benches for the extension applications: the inverted index
//! (delay vs array) and the sort substrate it runs on.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bds_workloads::{dedup, invindex, raytrace};

fn bench_invindex(c: &mut Criterion) {
    let text = invindex::generate(invindex::Params {
        n: 300_000,
        seed: 9,
    });
    let mut g = c.benchmark_group("ext/invindex");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| invindex::run_array(&text))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| invindex::run_delay(&text))
    });
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let xs: Vec<u64> = (0..400_000u64).map(|i| (i * 2654435761) % 1_000_000).collect();
    let mut g = c.benchmark_group("ext/sort");
    g.bench_function(BenchmarkId::from_parameter("bds-sort"), |b| {
        b.iter(|| {
            let mut v = xs.clone();
            bds_sort::sort(&mut v);
            v
        })
    });
    g.bench_function(BenchmarkId::from_parameter("std-stable"), |b| {
        b.iter(|| {
            let mut v = xs.clone();
            v.sort();
            v
        })
    });
    g.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let keys = dedup::generate(dedup::Params {
        n: 300_000,
        universe: 30_000,
        seed: 4,
    });
    let mut g = c.benchmark_group("ext/dedup");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| dedup::run_array(&keys))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| dedup::run_delay(&keys))
    });
    g.bench_function(BenchmarkId::from_parameter("count-only"), |b| {
        b.iter(|| dedup::count_distinct_delay(&keys))
    });
    g.finish();
}

fn bench_raytrace(c: &mut Criterion) {
    let scene = raytrace::generate(raytrace::Params {
        n: 20_000,
        seed: 5,
    });
    let mut g = c.benchmark_group("ext/raytrace");
    g.bench_function(BenchmarkId::from_parameter("build-kdtree"), |b| {
        b.iter(|| raytrace::build(&scene))
    });
    let tree = raytrace::build(&scene);
    let rays = raytrace::generate_rays(200, 6);
    g.bench_function(BenchmarkId::from_parameter("query-200-rays"), |b| {
        b.iter(|| raytrace::query_batch(&tree, &scene, &rays))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_invindex, bench_sort, bench_dedup, bench_raytrace
}
criterion_main!(benches);
