//! Criterion benches backing Figure 15: bfs and primes (delay version)
//! across explicit pool sizes, to observe the scaling trend.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bds_pool::Pool;
use bds_workloads::{bfs, primes};

fn sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut ps = vec![1usize];
    if max >= 2 {
        ps.push(2);
    }
    if max >= 4 {
        ps.push(max);
    }
    ps.dedup();
    ps
}

fn bench_bfs_scaling(c: &mut Criterion) {
    let graph = bfs::generate(bfs::Params {
        scale: 14,
        edge_factor: 12,
        seed: 2,
    });
    let mut g = c.benchmark_group("fig15/bfs-delay");
    for p in sweep() {
        let pool = Pool::new(p);
        g.bench_function(BenchmarkId::from_parameter(format!("P{p}")), |b| {
            b.iter(|| pool.install(|| bfs::run_delay(&graph, 0)))
        });
    }
    g.finish();
}

fn bench_primes_scaling(c: &mut Criterion) {
    let n = 500_000;
    let mut g = c.benchmark_group("fig15/primes-delay");
    for p in sweep() {
        let pool = Pool::new(p);
        g.bench_function(BenchmarkId::from_parameter(format!("P{p}")), |b| {
            b.iter(|| pool.install(|| primes::run_delay(n)))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bfs_scaling, bench_primes_scaling
}
criterion_main!(benches);
