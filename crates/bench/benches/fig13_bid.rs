//! Criterion microbenches backing Figure 13: the five BID benchmarks in
//! their array / rad / delay versions (table-shaped output comes from the
//! `fig13` binary; these give statistically rigorous per-version times).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bds_workloads::{bestcut, bfs, bignum, primes, tokens};

const N: usize = 400_000;

fn bench_bestcut(c: &mut Criterion) {
    let ev = bestcut::generate(bestcut::Params { n: N, seed: 1 });
    let mut g = c.benchmark_group("fig13/bestcut");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| bestcut::run_array(&ev))
    });
    g.bench_function(BenchmarkId::from_parameter("rad"), |b| {
        b.iter(|| bestcut::run_rad(&ev))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| bestcut::run_delay(&ev))
    });
    g.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let graph = bfs::generate(bfs::Params {
        scale: 14,
        edge_factor: 12,
        seed: 2,
    });
    let mut g = c.benchmark_group("fig13/bfs");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| bfs::run_array(&graph, 0))
    });
    g.bench_function(BenchmarkId::from_parameter("rad"), |b| {
        b.iter(|| bfs::run_rad(&graph, 0))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| bfs::run_delay(&graph, 0))
    });
    g.finish();
}

fn bench_bignum(c: &mut Criterion) {
    let (x, y) = bignum::generate(bignum::Params { n: N, seed: 3 });
    let mut g = c.benchmark_group("fig13/bignum-add");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| bignum::run_array(&x, &y))
    });
    g.bench_function(BenchmarkId::from_parameter("rad"), |b| {
        b.iter(|| bignum::run_rad(&x, &y))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| bignum::run_delay(&x, &y))
    });
    g.finish();
}

fn bench_primes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13/primes");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| primes::run_array(N))
    });
    g.bench_function(BenchmarkId::from_parameter("rad"), |b| {
        b.iter(|| primes::run_rad(N))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| primes::run_delay(N))
    });
    g.finish();
}

fn bench_tokens(c: &mut Criterion) {
    let text = tokens::generate(tokens::Params { n: N, seed: 4 });
    let mut g = c.benchmark_group("fig13/tokens");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| tokens::run_array(&text))
    });
    g.bench_function(BenchmarkId::from_parameter("rad"), |b| {
        b.iter(|| tokens::run_rad(&text))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| tokens::run_delay(&text))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bestcut, bench_bfs, bench_bignum, bench_primes, bench_tokens
}
criterion_main!(benches);
