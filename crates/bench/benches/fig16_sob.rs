//! Criterion benches backing Figure 16: stream-of-blocks bestcut across
//! block sizes, vs the array and delay versions.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bds_workloads::bestcut;

fn bench_sob(c: &mut Criterion) {
    let n = 400_000;
    let ev = bestcut::generate(bestcut::Params { n, seed: 1 });
    let mut g = c.benchmark_group("fig16/bestcut");
    for block in [n / 2000, n / 200, n / 20, n / 2] {
        g.bench_function(BenchmarkId::from_parameter(format!("sob-B{block}")), |b| {
            b.iter(|| bestcut::run_sob(&ev, block))
        });
    }
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| bestcut::run_array(&ev))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| bestcut::run_delay(&ev))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sob
}
criterion_main!(benches);
