//! Criterion microbenches backing Figure 14: the eight RAD benchmarks,
//! array (A) vs delay (Ours).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bds_workloads::{grep, integrate, linearrec, linefit, mcss, quickhull, spmv, wc};

const N: usize = 400_000;

fn bench_grep(c: &mut Criterion) {
    let p = grep::Params {
        n: N,
        ..Default::default()
    };
    let text = grep::generate(&p);
    let mut g = c.benchmark_group("fig14/grep");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| grep::run_array(&text, &p.pattern))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| grep::run_delay(&text, &p.pattern))
    });
    g.finish();
}

fn bench_integrate(c: &mut Criterion) {
    let p = integrate::Params {
        n: N,
        ..Default::default()
    };
    let mut g = c.benchmark_group("fig14/integrate");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| integrate::run_array(p))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| integrate::run_delay(p))
    });
    g.finish();
}

fn bench_linearrec(c: &mut Criterion) {
    let pairs = linearrec::generate(linearrec::Params {
        n: N,
        ..Default::default()
    });
    let mut g = c.benchmark_group("fig14/linearrec");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| linearrec::run_array(&pairs, 1.0))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| linearrec::run_delay(&pairs, 1.0))
    });
    g.finish();
}

fn bench_linefit(c: &mut Criterion) {
    let pts = linefit::generate(linefit::Params {
        n: N,
        ..Default::default()
    });
    let mut g = c.benchmark_group("fig14/linefit");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| linefit::run_array(&pts))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| linefit::run_delay(&pts))
    });
    g.finish();
}

fn bench_mcss(c: &mut Criterion) {
    let xs = mcss::generate(mcss::Params {
        n: N,
        ..Default::default()
    });
    let mut g = c.benchmark_group("fig14/mcss");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| mcss::run_array(&xs))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| mcss::run_delay(&xs))
    });
    g.finish();
}

fn bench_quickhull(c: &mut Criterion) {
    let pts = quickhull::generate(quickhull::Params {
        n: 100_000,
        ..Default::default()
    });
    let mut g = c.benchmark_group("fig14/quickhull");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| quickhull::run_array(&pts))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| quickhull::run_delay(&pts))
    });
    g.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let m = spmv::generate(spmv::Params {
        rows: 4_000,
        cols: 4_000,
        nnz_per_row: 100,
        seed: 5,
    });
    let mut g = c.benchmark_group("fig14/sparse-mxv");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| spmv::run_array(&m))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| spmv::run_delay(&m))
    });
    g.finish();
}

fn bench_wc(c: &mut Criterion) {
    let text = wc::generate(wc::Params {
        n: N,
        ..Default::default()
    });
    let mut g = c.benchmark_group("fig14/wc");
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| wc::run_array(&text))
    });
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| wc::run_delay(&text))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_grep, bench_integrate, bench_linearrec, bench_linefit,
              bench_mcss, bench_quickhull, bench_spmv, bench_wc
}
criterion_main!(benches);
