//! Criterion microbenches of the core sequence operations themselves:
//! each op in isolation plus the canonical fusion pipelines, against
//! their eager-array equivalents.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bds_baseline::array;
use bds_seq::prelude::*;

const N: usize = 1_000_000;

fn bench_map_reduce(c: &mut Criterion) {
    let xs: Vec<u64> = (0..N as u64).collect();
    let mut g = c.benchmark_group("core/map-reduce");
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| from_slice(&xs).map(|x| x * 3 + 1).reduce(0, |a, b| a + b))
    });
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| {
            let ys = array::map(&xs, |&x| x * 3 + 1);
            array::reduce(&ys, 0, |a, b| a + b)
        })
    });
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let xs: Vec<u64> = (0..N as u64).map(|x| x % 17).collect();
    let mut g = c.benchmark_group("core/scan-then-reduce");
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| {
            let (s, _) = from_slice(&xs).scan(0, |a, b| a + b);
            s.reduce(0, u64::max)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| {
            let (s, _) = array::scan(&xs, 0, |a, b| a + b);
            array::reduce(&s, 0, u64::max)
        })
    });
    g.finish();
}

fn bench_filter(c: &mut Criterion) {
    let xs: Vec<u64> = (0..N as u64).map(|x| (x * 2654435761) % 1000).collect();
    let mut g = c.benchmark_group("core/filter-then-reduce");
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| {
            from_slice(&xs)
                .filter(|&x| x < 300)
                .reduce(0, |a, b| a + b)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| {
            let kept = array::filter(&xs, |&x| x < 300);
            array::reduce(&kept, 0, |a, b| a + b)
        })
    });
    g.finish();
}

fn bench_flatten(c: &mut Criterion) {
    // 10K inner sequences of 100 elements each.
    let inners: Vec<Vec<u64>> = (0..10_000u64)
        .map(|k| (0..100).map(|i| k + i).collect())
        .collect();
    let forced: Vec<bds_seq::Forced<u64>> = inners
        .iter()
        .map(|v| bds_seq::Forced::from_vec(v.clone()))
        .collect();
    let mut g = c.benchmark_group("core/flatten-then-reduce");
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| {
            bds_seq::Flattened::from_inners(forced.clone()).reduce(0, |a, b| a + b)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| {
            let flat = array::flatten(&inners);
            array::reduce(&flat, 0, |a, b| a + b)
        })
    });
    g.finish();
}

fn bench_to_vec(c: &mut Criterion) {
    let mut g = c.benchmark_group("core/tabulate-to-vec");
    g.bench_function(BenchmarkId::from_parameter("delay"), |b| {
        b.iter(|| tabulate(N, |i| (i as u64).wrapping_mul(31)).to_vec())
    });
    g.bench_function(BenchmarkId::from_parameter("array"), |b| {
        b.iter(|| array::tabulate(N, |i| (i as u64).wrapping_mul(31)))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_map_reduce, bench_scan, bench_filter, bench_flatten, bench_to_vec
}
criterion_main!(benches);
