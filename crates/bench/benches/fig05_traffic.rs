//! Criterion bench backing Figure 5: the best-cut pipeline with and
//! without fusion, plus the Section 3 "force the first map" variant, so
//! the 8n / 4n / 2n traffic model can be checked against wall time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bds_seq::prelude::*;
use bds_workloads::bestcut;

/// The forced variant of the delay pipeline (Section 3): force the first
/// map so f evaluates once, paying n extra reads and writes.
fn run_delay_forced(events: &[u64]) -> f64 {
    let n = events.len();
    let flags = from_slice(events).map(|e| e & 1).force();
    let (counts, _) = flags.scan(0u64, |a, b| a + b);
    counts
        .map(|c| {
            let left = c as f64;
            left * (n as f64 - left) + 1.0
        })
        .reduce(f64::INFINITY, f64::min)
}

fn bench_variants(c: &mut Criterion) {
    let ev = bestcut::generate(bestcut::Params {
        n: 400_000,
        seed: 1,
    });
    let mut g = c.benchmark_group("fig05/bestcut-traffic");
    g.bench_function(BenchmarkId::from_parameter("normal-8n"), |b| {
        b.iter(|| bestcut::run_array(&ev))
    });
    g.bench_function(BenchmarkId::from_parameter("forced-4n"), |b| {
        b.iter(|| run_delay_forced(&ev))
    });
    g.bench_function(BenchmarkId::from_parameter("fused-2n"), |b| {
        b.iter(|| bestcut::run_delay(&ev))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_variants
}
criterion_main!(benches);
