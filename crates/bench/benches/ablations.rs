//! Ablation benches for the design decisions called out in DESIGN.md:
//!
//! 1. **dispatch** — static trait dispatch (our default, like the
//!    paper's C++ templates) vs the paper-faithful ML-style tagged union
//!    with boxed closures (`bds_seq::dynseq`). Fusion happens in both;
//!    the delta is pure indirect-call overhead.
//! 2. **blocksize** — the delay bestcut across forced block sizes,
//!    probing the granularity trade-off of the block policy.
//! 3. **force-vs-refuse** — recompute a shared delayed map twice vs
//!    force it once (the Section 3 trade-off, complementing fig05).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bds_seq::dynseq::DSeq;
use bds_seq::prelude::*;
use bds_workloads::bestcut;

const N: usize = 400_000;

fn bench_dispatch(c: &mut Criterion) {
    let xs: Vec<u64> = (0..N as u64).map(|x| x % 13).collect();
    let mut g = c.benchmark_group("ablation/dispatch");
    g.bench_function(BenchmarkId::from_parameter("static"), |b| {
        b.iter(|| {
            let (s, _) = from_slice(&xs).map(|x| x * 2 + 1).scan(0, |a, b| a + b);
            s.map(|x| x ^ 0x55).reduce(0, u64::max)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("dynamic"), |b| {
        let data = xs.clone();
        b.iter(|| {
            let (s, _) = DSeq::from_vec(data.clone())
                .map(|x| x * 2 + 1)
                .scan(0, |a, b| a + b);
            s.map(|x| x ^ 0x55).reduce(0, u64::max)
        })
    });
    g.finish();
}

fn bench_blocksize(c: &mut Criterion) {
    let ev = bestcut::generate(bestcut::Params { n: N, seed: 1 });
    let mut g = c.benchmark_group("ablation/blocksize");
    for bs in [256usize, 1024, 4096, 16_384, 65_536] {
        g.bench_function(BenchmarkId::from_parameter(format!("B{bs}")), |b| {
            let _guard = bds_seq::force_block_size(bs);
            b.iter(|| bestcut::run_delay(&ev))
        });
    }
    g.finish();
}

fn bench_force_vs_recompute(c: &mut Criterion) {
    // A deliberately expensive element function consumed by two reduces.
    let xs: Vec<f64> = (0..N).map(|i| 1.0 + i as f64).collect();
    #[inline]
    fn expensive(x: f64) -> f64 {
        x.sqrt().ln() + x.cbrt()
    }
    let mut g = c.benchmark_group("ablation/force-vs-recompute");
    g.bench_function(BenchmarkId::from_parameter("recompute-twice"), |b| {
        b.iter(|| {
            let s1 = from_slice(&xs).map(expensive).reduce(0.0, |a, b| a + b);
            let s2 = from_slice(&xs).map(expensive).reduce(f64::MIN, f64::max);
            (s1, s2)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("force-once"), |b| {
        b.iter(|| {
            let forced = from_slice(&xs).map(expensive).force();
            let s1 = forced.reduce(0.0, |a, b| a + b);
            let s2 = forced.reduce(f64::MIN, f64::max);
            (s1, s2)
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dispatch, bench_blocksize, bench_force_vs_recompute
}
criterion_main!(benches);
